//! Stable content digests for cache keys.
//!
//! The cache addresses units by the hash of their canonical description,
//! so the hash must be **stable across processes, platforms, and Rust
//! releases** — which rules out `std::hash` (`DefaultHasher` makes no
//! cross-version promise, and `SipHasher` is randomly keyed elsewhere).
//! Two independently-seeded FNV-1a 64 streams give a cheap 128-bit
//! digest; a colliding pair would only cost a spurious cache miss, never
//! a wrong result, because [`crate::cache::UnitCache`] stores the full
//! canonical description next to each payload and verifies it on read.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a 64 over a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental 128-bit digest: two FNV-1a 64 lanes with different
/// starting states (the second lane also folds in a running length, so
/// the lanes never collapse to the same function).
#[derive(Debug, Clone)]
pub struct Digest {
    a: u64,
    b: u64,
    len: u64,
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

impl Digest {
    /// A fresh digest.
    pub fn new() -> Digest {
        Digest {
            a: FNV_OFFSET,
            // Any constant different from the FNV offset decorrelates the
            // lanes; this one is the offset mixed with an arbitrary odd
            // 64-bit pattern.
            b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
            len: 0,
        }
    }

    /// Folds raw bytes into both lanes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Digest {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.len = self.len.wrapping_add(1);
            self.b = (self.b ^ u64::from(byte) ^ (self.len << 8)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a string into the digest.
    pub fn write_str(&mut self, s: &str) -> &mut Digest {
        self.write_bytes(s.as_bytes())
    }

    /// Folds an integer (little-endian bytes) into the digest.
    pub fn write_u64(&mut self, v: u64) -> &mut Digest {
        self.write_bytes(&v.to_le_bytes())
    }

    /// The 32-hex-character digest of everything written so far.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_values() {
        // Pinned outputs: a digest change silently invalidates every
        // on-disk cache, so it must be a deliberate, visible decision.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut d = Digest::new();
        d.write_str("unit").write_u64(7);
        assert_eq!(d.hex(), d.clone().hex());
        assert_eq!(d.hex().len(), 32);
    }

    #[test]
    fn digests_separate_similar_inputs() {
        let hex = |parts: &[&str]| {
            let mut d = Digest::new();
            for p in parts {
                d.write_str(p);
            }
            d.hex()
        };
        // Incremental writes digest the concatenated byte stream — field
        // boundaries are the caller's job (the canonical unit line uses
        // explicit `key=value` separators).
        assert_eq!(hex(&["ab"]), hex(&["a", "b", ""]));
        assert_ne!(hex(&["a"]), hex(&["b"]));
        assert_ne!(hex(&["ab"]), hex(&["ba"]));
        let mut x = Digest::new();
        x.write_u64(1);
        let mut y = Digest::new();
        y.write_u64(2);
        assert_ne!(x.hex(), y.hex());
    }
}
