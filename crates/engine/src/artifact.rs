//! Process-wide, content-addressed **artifact cache** for derived
//! in-memory values that are expensive to build and shared across many
//! units: decoded trace containers, replay plans, warmed machine
//! checkpoints.
//!
//! The unit store ([`crate::store::PackStore`]) deduplicates *whole
//! unit outcomes* across runs; this cache deduplicates the *preparation
//! work inside units* across the current process — every worker thread
//! of the scheduler shares one table, so N concurrent units over the
//! same trace decode it once and the rest wait for the first build
//! instead of re-running it.
//!
//! Design rules:
//!
//! * **Content-addressed keys.** A key must be derived purely from the
//!   content the artifact is a function of (payload digests, config
//!   fingerprints, scheme labels). Two calls with the same
//!   `(namespace, key)` MUST be willing to receive each other's value.
//! * **Determinism is the caller's contract.** Cached values are only
//!   ever *shared*, never mutated; builders must be pure functions of
//!   the key, so a hit is indistinguishable from a rebuild and output
//!   stays byte-identical cold vs. warm, 1 thread vs. N.
//! * **Process lifetime.** Entries live until process exit (or
//!   [`ArtifactCache::clear`]); nothing is persisted. Cross-run reuse
//!   stays the unit store's job, with its `code_epoch` invalidation —
//!   an in-memory cache cannot go stale across code changes.
//! * **Build-once under contention.** Each slot is a [`OnceLock`]:
//!   concurrent requesters block on the first builder instead of
//!   duplicating the work (the same shape as the engine's in-flight
//!   unit table, one level down).

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One slot: filled exactly once, shared by every later requester.
type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// Hit/miss counters for one namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counters {
    hits: u64,
    misses: u64,
}

/// A point-in-time view of one namespace's activity, for stats
/// endpoints and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactStats {
    /// The namespace (`"trace"`, `"plan"`, `"checkpoint"`, …).
    pub namespace: &'static str,
    /// Distinct keys currently resident.
    pub entries: usize,
    /// Requests served from a filled slot (including requesters that
    /// blocked on a concurrent build and received its value).
    pub hits: u64,
    /// Requests that ran the builder.
    pub misses: u64,
}

/// The cache. Usually accessed through [`ArtifactCache::global`];
/// separate instances exist only for tests and benches.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    /// When false, `get_or_build` neither probes nor stores — every
    /// call builds a private value. Output must be identical either
    /// way; the switch exists so `--no-artifact-cache` can prove it.
    disabled: AtomicBool,
    slots: Mutex<BTreeMap<(&'static str, String), Slot>>,
    counters: Mutex<BTreeMap<&'static str, Counters>>,
}

impl ArtifactCache {
    /// An empty, enabled cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// The process-wide instance every layer shares.
    pub fn global() -> &'static ArtifactCache {
        static GLOBAL: OnceLock<ArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(ArtifactCache::new)
    }

    /// Enables or disables the cache (disabling does not drop resident
    /// entries; re-enabling sees them again).
    pub fn set_enabled(&self, enabled: bool) {
        self.disabled.store(!enabled, Ordering::SeqCst);
    }

    /// Whether `get_or_build` currently shares results.
    pub fn enabled(&self) -> bool {
        !self.disabled.load(Ordering::SeqCst)
    }

    /// Returns the artifact for `(namespace, key)`, running `build` only
    /// if no other caller has built it yet. Concurrent callers with the
    /// same key coalesce: one builds, the rest block and share.
    ///
    /// The stored value is type-erased; every caller of a namespace must
    /// use one value type `T`.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds a value of a different type — two call
    /// sites disagree about a namespace's value type, a programming
    /// error no fallback should paper over.
    pub fn get_or_build<T, F>(&self, namespace: &'static str, key: &str, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if !self.enabled() {
            return Arc::new(build());
        }
        let slot = {
            let mut slots = self.slots.lock().expect("artifact slot table poisoned");
            Arc::clone(
                slots
                    .entry((namespace, key.to_owned()))
                    .or_default(),
            )
        };
        let mut built = false;
        let value = slot.get_or_init(|| {
            built = true;
            Arc::new(build()) as Arc<dyn Any + Send + Sync>
        });
        {
            let mut counters = self.counters.lock().expect("artifact counters poisoned");
            let c = counters.entry(namespace).or_default();
            if built {
                c.misses += 1;
            } else {
                c.hits += 1;
            }
        }
        Arc::clone(value)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("artifact namespace '{namespace}' holds a different type"))
    }

    /// Per-namespace statistics, sorted by namespace name. Namespaces
    /// appear once they have seen at least one request.
    pub fn stats(&self) -> Vec<ArtifactStats> {
        let slots = self.slots.lock().expect("artifact slot table poisoned");
        let counters = self.counters.lock().expect("artifact counters poisoned");
        counters
            .iter()
            .map(|(ns, c)| ArtifactStats {
                namespace: ns,
                entries: slots.keys().filter(|(s, _)| s == ns).count(),
                hits: c.hits,
                misses: c.misses,
            })
            .collect()
    }

    /// Drops every resident entry and all counters (the enabled/disabled
    /// switch is left as is). Mainly for tests and benches.
    pub fn clear(&self) {
        self.slots
            .lock()
            .expect("artifact slot table poisoned")
            .clear();
        self.counters
            .lock()
            .expect("artifact counters poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_counts_hits() {
        let cache = ArtifactCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache.get_or_build("ns", "k", || {
                builds += 1;
                41_u64 + 1
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(
            (stats[0].entries, stats[0].hits, stats[0].misses),
            (1, 2, 1)
        );
    }

    #[test]
    fn namespaces_and_keys_are_independent() {
        let cache = ArtifactCache::new();
        let a = cache.get_or_build("a", "k", || 1_u64);
        let b = cache.get_or_build("b", "k", || 2_u64);
        let c = cache.get_or_build("a", "other", || 3_u64);
        assert_eq!((*a, *b, *c), (1, 2, 3));
        assert_eq!(cache.stats().iter().map(|s| s.entries).sum::<usize>(), 3);
    }

    #[test]
    fn disabled_cache_builds_every_time_and_stores_nothing() {
        let cache = ArtifactCache::new();
        cache.set_enabled(false);
        let mut builds = 0;
        for _ in 0..2 {
            let v = cache.get_or_build("ns", "k", || {
                builds += 1;
                7_u64
            });
            assert_eq!(*v, 7);
        }
        assert_eq!(builds, 2);
        assert!(cache.stats().is_empty());
        // Re-enabling starts sharing again.
        cache.set_enabled(true);
        let _ = cache.get_or_build("ns", "k", || {
            builds += 1;
            7_u64
        });
        let _ = cache.get_or_build("ns", "k", || {
            builds += 1;
            7_u64
        });
        assert_eq!(builds, 3, "one build after re-enabling, then a hit");
    }

    #[test]
    fn concurrent_requesters_coalesce_into_one_build() {
        use std::sync::atomic::AtomicU64;
        let cache = Arc::new(ArtifactCache::new());
        let builds = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                let v = cache.get_or_build("ns", "k", || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so contenders really overlap.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    123_u64
                });
                *v
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 123);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats[0].misses, 1);
        assert_eq!(stats[0].hits, 7);
    }

    #[test]
    fn clear_drops_entries() {
        let cache = ArtifactCache::new();
        let _ = cache.get_or_build("ns", "k", || 1_u64);
        cache.clear();
        assert!(cache.stats().is_empty());
        let mut rebuilt = false;
        let _ = cache.get_or_build("ns", "k", || {
            rebuilt = true;
            2_u64
        });
        assert!(rebuilt);
    }
}
