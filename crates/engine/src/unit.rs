//! The unit graph: a [`UnitSpec`] is the stable, hashable description of
//! one seeded execution unit — the common currency every `sia` verb
//! compiles its grid into before anything runs.
//!
//! A unit is a **pure function of its spec**: same spec, same outcome,
//! whatever thread ran it and whenever. That property is what makes the
//! scheduler free to reorder execution and the cache sound to splice
//! results from a previous process.

use crate::digest::Digest;

/// The stable description of one execution unit.
///
/// Two specs that compare equal must describe byte-identical work; two
/// specs that differ in any field are different units (and hash to
/// different cache keys, up to the 128-bit collision bound — which the
/// cache additionally guards by verifying the canonical line on read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSpec {
    /// The verb family the unit belongs to (`"sweep"`, `"attack"`,
    /// `"experiment"`, `"bench"`).
    pub kind: &'static str,
    /// The cell axes, as one canonical `key=value` line fragment (scheme,
    /// workload, geometry, noise, … — whatever identifies the cell within
    /// its kind, in a fixed order chosen by the verb).
    pub key: String,
    /// Trial index within the cell.
    pub trial: u64,
    /// The unit's mixed seed (already derived from the run's base seed;
    /// part of the identity because the outcome depends on it).
    pub seed: u64,
    /// Digest of the full simulated-machine configuration the unit runs
    /// on — axes name presets, this pins every derived knob, so a config
    /// change that presets don't capture still invalidates the unit.
    pub config_digest: u64,
}

impl UnitSpec {
    /// The canonical one-line rendering of the spec under a given code
    /// epoch — the exact string the cache digests for the unit's address
    /// and stores next to the payload for verification.
    pub fn canonical(&self, code_epoch: u64) -> String {
        format!(
            "epoch={code_epoch} kind={} {} trial={} seed={:#018x} cfg={:#018x}",
            self.kind, self.key, self.trial, self.seed, self.config_digest
        )
    }

    /// The unit's content address: the 128-bit hex digest of
    /// [`canonical`](Self::canonical).
    pub fn address(&self, code_epoch: u64) -> String {
        let mut d = Digest::new();
        d.write_str(&self.canonical(code_epoch));
        d.hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> UnitSpec {
        UnitSpec {
            kind: "sweep",
            key: "scheme=dom workload=ptr-chase".to_owned(),
            trial: 2,
            seed: 0xDEAD_BEEF,
            config_digest: 42,
        }
    }

    #[test]
    fn canonical_line_is_stable_and_field_sensitive() {
        let base = spec();
        assert_eq!(
            base.canonical(1),
            "epoch=1 kind=sweep scheme=dom workload=ptr-chase trial=2 \
             seed=0x00000000deadbeef cfg=0x000000000000002a"
        );
        let mut addresses = vec![base.address(1), base.address(2)];
        for mutate in [
            |s: &mut UnitSpec| s.kind = "attack",
            |s: &mut UnitSpec| s.key.push_str(" geometry=kaby-lake"),
            |s: &mut UnitSpec| s.trial += 1,
            |s: &mut UnitSpec| s.seed += 1,
            |s: &mut UnitSpec| s.config_digest += 1,
        ] {
            let mut changed = spec();
            mutate(&mut changed);
            addresses.push(changed.address(1));
        }
        let mut dedup = addresses.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), addresses.len(), "every field must address");
    }
}
