//! Cross-core MSHR contention over the shared hierarchy.
//!
//! Two cores hammering the shared side must observe the documented
//! occupancy and ordering semantics: the shared `MshrFile`'s O(1)
//! occupancy counter bounds simultaneous demand misses, full-file demand
//! misses absorb a queueing delay (`SharedMshrStats::conflicts`), and the
//! interference is visible as wall-clock slowdown on the contended core.
//! The idle-cycle skip (`Machine::advance`) must replay all of it exactly
//! (`disable_idle_skip` differential) with two active cores.

use si_cpu::{CoreStats, Machine, MachineConfig};
use si_workloads::gadgets::mshr_hammer;

const ITERS: usize = 24;
const BUDGET: u64 = 1_000_000;

/// Disjoint hammer regions per core (see `mshr_hammer` docs).
const BASE_A: u64 = 0x4000_0000;
const BASE_B: u64 = 0x6000_0000;

fn dual_hammer_machine(shared_mshrs: usize) -> Machine {
    let mut cfg = MachineConfig::default();
    cfg.hierarchy.shared_mshrs = shared_mshrs;
    let mut m = Machine::new(cfg);
    m.load_program(0, &mshr_hammer(0, BASE_A, ITERS));
    m.load_program(1, &mshr_hammer(0x2_0000, BASE_B, ITERS));
    m
}

fn run_all(m: &mut Machine) {
    m.run_core_to_halt(0, BUDGET).expect("core 0 halts");
    m.run_core_to_halt(1, BUDGET).expect("core 1 halts");
}

#[test]
fn solo_hammer_never_conflicts_on_the_default_shared_file() {
    // One core's demand stream (8 private MSHRs + 1 ifetch) can never
    // saturate the default 16-entry shared file — the sizing that keeps
    // every single-active-core experiment bit-identical.
    let mut m = Machine::new(MachineConfig::default());
    m.load_program(0, &mshr_hammer(0, BASE_A, ITERS));
    m.run_core_to_halt(0, BUDGET).expect("halts");
    let s = m.shared_mshr_stats();
    assert_eq!(s.conflicts, 0, "{s:?}");
    assert!(s.high_water <= 9, "{s:?}");
}

#[test]
fn dual_hammers_saturate_a_small_shared_file_and_conflict() {
    let mut m = dual_hammer_machine(4);
    run_all(&mut m);
    let s = m.shared_mshr_stats();
    assert_eq!(s.capacity, 4);
    assert_eq!(s.high_water, 4, "pressure reaches capacity: {s:?}");
    assert!(s.conflicts > 0, "full-file misses pay the delay: {s:?}");
    // Distinct address regions: nothing to coalesce onto.
    assert_eq!(s.coalesced, 0, "{s:?}");
}

#[test]
fn shared_contention_slows_the_contended_core() {
    let mut solo = Machine::new({
        let mut cfg = MachineConfig::default();
        cfg.hierarchy.shared_mshrs = 4;
        cfg
    });
    solo.load_program(0, &mshr_hammer(0, BASE_A, ITERS));
    solo.run_core_to_halt(0, BUDGET).expect("halts");
    let solo_cycles = solo.core(0).stats().cycles;

    let mut dual = dual_hammer_machine(4);
    run_all(&mut dual);
    let dual_cycles = dual.core(0).stats().cycles;
    assert!(
        dual_cycles > solo_cycles,
        "core 0 must observe the co-runner: solo {solo_cycles}, dual {dual_cycles}"
    );
}

#[test]
fn occupancy_counter_returns_to_zero_after_the_fills_land() {
    let mut m = dual_hammer_machine(4);
    run_all(&mut m);
    // Both cores halted; step past the last outstanding DRAM round trip
    // and touch the shared file with one more demand miss.
    m.run_cycles(m.config().hierarchy.latency.dram + 1);
    let s_before = m.shared_mshr_stats();
    assert!(s_before.in_flight <= s_before.capacity);
    m.run_op(si_cpu::AgentOp::TimedAccess {
        core: 1,
        addr: 0x7000_0000,
    });
    assert_eq!(m.shared_mshr_stats().in_flight, 1, "only the probe's entry");
}

/// The idle-skip differential of `MachineConfig::disable_idle_skip`,
/// under two active cores contending on a small shared file: `advance`
/// must be cycle- and counter-identical to stepping.
#[test]
fn idle_skip_is_exact_under_two_active_cores() {
    let run = |disable_idle_skip: bool| -> (u64, CoreStats, CoreStats, u64) {
        let mut cfg = MachineConfig::default();
        cfg.hierarchy.shared_mshrs = 4;
        cfg.disable_idle_skip = disable_idle_skip;
        let mut m = Machine::new(cfg);
        m.load_program(0, &mshr_hammer(0, BASE_A, ITERS));
        m.load_program(1, &mshr_hammer(0x2_0000, BASE_B, ITERS));
        run_all(&mut m);
        (
            m.cycle(),
            m.core(0).stats(),
            m.core(1).stats(),
            m.shared_mshr_stats().conflicts,
        )
    };
    let skipped = run(false);
    let stepped = run(true);
    assert_eq!(skipped, stepped);
}
