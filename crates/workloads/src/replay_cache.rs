//! Cached sampled replay: the trace hot path, wired through the
//! process-wide [`si_engine::ArtifactCache`].
//!
//! A sweep over the trace grid replays the same handful of committed
//! `.sit` fixtures under every (scheme, predictor, trial) cell. The
//! monolithic [`si_trace::replay_sampled`] re-pays three costs per
//! cell that depend only on the trace (or on the trace plus the cell's
//! machine shape): decoding the `.sit` payload, the interpreter
//! fast-forward that builds the [`ReplayPlan`], and the machine warm-up
//! per representative interval. [`replay_trace_cached`] shares each of
//! them at its natural granularity:
//!
//! | namespace    | key                                            | artifact |
//! |--------------|------------------------------------------------|----------|
//! | `trace`      | fixture content digest                         | decoded [`TraceFile`] (see [`SampleTrace::decode_shared`](crate::SampleTrace::decode_shared)) |
//! | `program`    | fixture content digest                         | program-only decode (see [`SampleTrace::program_shared`](crate::SampleTrace::program_shared)) |
//! | `plan`       | trace content digest                           | [`ReplayPlan`] build result |
//! | `checkpoint` | trace digest · interval · config fingerprint (noise seed zeroed) · scheme label | warmed-machine [`MachineCheckpoint`] |
//! | `interval`   | checkpoint key · cycle budget                  | simulated interval outcome ([`CoreStats`]) |
//!
//! Correctness invariant: **cached and uncached replay are
//! byte-identical.** The plan is a pure function of the trace; the
//! checkpoint path is used only when forking is provably equivalent to
//! rebuilding — checkpointing not disabled and the noise model quiet
//! (`dram_jitter == 0` and `background_period == 0`), so no RNG stream
//! is consumed before the capture point and reseeding at fork time
//! ([`MachineCheckpoint::fork_with_seed`]) reproduces a from-scratch
//! machine exactly. Noisy or checkpoint-averse configs silently take
//! the uncached warm-up, same results, no stale sharing. Per-unit noise
//! seeds stay out of the checkpoint key (the fingerprint is taken with
//! `noise.seed = 0`) and are reapplied at fork time, so all trials of a
//! cell share one checkpoint.

use std::sync::Arc;

use si_cpu::{CoreStats, MachineCheckpoint, MachineConfig};
use si_engine::ArtifactCache;
use si_schemes::SchemeKind;
use si_trace::{fnv1a64, ReplayError, ReplayOutcome, ReplayPlan, TraceFile};

/// Fetches (building at most once per process) the shared
/// [`ReplayPlan`] for a trace whose content digest is `digest`.
/// Build errors are cached too — a corrupt trace fails fast on every
/// call instead of re-running the fast-forward.
///
/// # Errors
///
/// Propagates [`ReplayPlan::build`] errors.
pub fn shared_plan(trace: &TraceFile, digest: u64) -> Result<Arc<ReplayPlan>, ReplayError> {
    let slot: Arc<Result<Arc<ReplayPlan>, ReplayError>> =
        ArtifactCache::global().get_or_build("plan", &format!("{digest:016x}"), || {
            ReplayPlan::build(trace).map(Arc::new)
        });
    match slot.as_ref() {
        Ok(plan) => Ok(Arc::clone(plan)),
        Err(e) => Err(e.clone()),
    }
}

/// Whether forking a cached checkpoint is byte-equivalent to building
/// the warm machine from scratch under `config` (see module docs).
fn checkpoint_eligible(cache: &ArtifactCache, config: &MachineConfig) -> bool {
    cache.enabled()
        && !config.disable_checkpoint
        && config.noise.dram_jitter == 0
        && config.noise.background_period == 0
}

/// Sampled replay of `trace` under `scheme`, sharing the replay plan
/// and (when provably safe) per-interval warm checkpoints across calls.
/// Cycle-for-cycle identical to
/// [`si_trace::replay_sampled`] with the same arguments — caching
/// changes wall-clock time, never results.
///
/// `digest` must be the trace's content digest (for the committed
/// fixtures, [`SampleTrace::content_digest`](crate::SampleTrace::content_digest));
/// it keys every artifact this function shares.
///
/// # Errors
///
/// Same contract as [`si_trace::replay_sampled`].
pub fn replay_trace_cached(
    trace: &TraceFile,
    digest: u64,
    scheme: SchemeKind,
    config: &MachineConfig,
    max_cycles: u64,
) -> Result<ReplayOutcome, ReplayError> {
    if trace.samples.reps.is_empty() {
        return si_trace::replay_full(trace, config, scheme.build(), max_cycles);
    }
    let cache = ArtifactCache::global();
    let plan = shared_plan(trace, digest)?;
    if !checkpoint_eligible(cache, config) {
        return si_trace::replay_planned(&plan, config, &|| scheme.build(), max_cycles);
    }
    // Checkpoints and outcomes are keyed by the canonical config
    // (per-unit noise seed zeroed): under a quiet noise model neither
    // RNG stream is ever drawn — `dram_jitter == 0` skips the DRAM
    // jitter draw and `background_period == 0` returns before the
    // background agent's draws — so warm-up and simulation are exactly
    // seed-independent and all trials of a cell may share one
    // checkpoint *and* one simulated outcome. The caller's seed is
    // still reapplied at fork time, keeping the forked machine
    // byte-equivalent to a from-scratch build under the caller's
    // config.
    let mut canon = config.clone();
    canon.noise.seed = 0;
    let cfg_fp = fnv1a64(canon.fingerprint().as_bytes());
    let mut est_cycles = 0u64;
    let mut simulated_instr = 0u64;
    let mut intervals_run = 0u64;
    for idx in 0..plan.intervals.len() {
        let key = format!("{digest:016x}:{idx}:{cfg_fp:016x}:{}", scheme.label());
        // The simulated interval outcome is memoized per
        // (trace, interval, config, scheme, budget) — the in-process
        // analogue of the unit store's whole-unit memoization, sound
        // for exactly the configs where checkpointing is. The budget
        // joins the key because it decides timeouts.
        let outcome_key = format!("{key}:{max_cycles}");
        let cache_for_build = cache;
        let plan_for_build = Arc::clone(&plan);
        let canon_for_build = canon.clone();
        let seed = config.noise.seed;
        let outcome: Arc<Result<CoreStats, ReplayError>> =
            cache.get_or_build("interval", &outcome_key, move || {
                let plan_for_ckpt = Arc::clone(&plan_for_build);
                let canon_for_ckpt = canon_for_build.clone();
                let ckpt: Arc<MachineCheckpoint> =
                    cache_for_build.get_or_build("checkpoint", &key, move || {
                        MachineCheckpoint::from_machine(plan_for_ckpt.warm_machine(
                            idx,
                            &canon_for_ckpt,
                            scheme.build(),
                        ))
                    });
                let mut m = ckpt.fork_with_seed(seed);
                plan_for_build.run_interval(idx, &mut m, max_cycles)
            });
        let stats = match outcome.as_ref() {
            Ok(stats) => *stats,
            Err(e) => return Err(e.clone()),
        };
        est_cycles += stats.cycles * plan.intervals[idx].cluster_size;
        simulated_instr += stats.retired;
        intervals_run += 1;
    }
    Ok(ReplayOutcome {
        cycles: est_cycles,
        simulated_instr,
        intervals_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampleTrace;

    const BUDGET: u64 = 30_000_000;

    /// The core identity: cached replay (cold cache, then warm cache)
    /// matches the uncached staged implementation field for field.
    #[test]
    fn cached_replay_matches_uncached_cold_and_warm() {
        let t = SampleTrace::Mixed;
        let trace = t.decode();
        let digest = t.content_digest();
        let config = MachineConfig::default();
        for scheme in [SchemeKind::Unprotected, SchemeKind::DomSpectre] {
            let reference =
                si_trace::replay_sampled(&trace, &config, &|| scheme.build(), BUDGET).unwrap();
            let cold = replay_trace_cached(&trace, digest, scheme, &config, BUDGET).unwrap();
            let warm = replay_trace_cached(&trace, digest, scheme, &config, BUDGET).unwrap();
            assert_eq!(cold, reference, "{scheme:?} cold-cache replay diverged");
            assert_eq!(warm, reference, "{scheme:?} warm-cache replay diverged");
        }
    }

    /// Checkpoint forks must reproduce per-seed noise behaviour: two
    /// different unit seeds go through the same cached checkpoint and
    /// must match from-scratch replay for each seed.
    #[test]
    fn checkpoint_reuse_is_seed_faithful() {
        let t = SampleTrace::Sort;
        let trace = t.decode();
        let digest = t.content_digest();
        for seed in [7u64, 8u64] {
            let mut config = MachineConfig::default();
            config.noise.seed = seed;
            let reference = si_trace::replay_sampled(
                &trace,
                &config,
                &|| SchemeKind::Unprotected.build(),
                BUDGET,
            )
            .unwrap();
            let cached =
                replay_trace_cached(&trace, digest, SchemeKind::Unprotected, &config, BUDGET)
                    .unwrap();
            assert_eq!(cached, reference, "seed {seed} diverged through checkpoint");
        }
    }

    /// Concurrent cached replays from many threads agree with the
    /// single-threaded result — the N-thread half of the determinism
    /// invariant.
    #[test]
    fn cached_replay_is_thread_count_independent() {
        let t = SampleTrace::Hash;
        let trace = Arc::new(t.decode());
        let digest = t.content_digest();
        let config = MachineConfig::default();
        let scheme = SchemeKind::DomSpectre;
        let reference = replay_trace_cached(&trace, digest, scheme, &config, BUDGET).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let trace = Arc::clone(&trace);
                let config = config.clone();
                std::thread::spawn(move || {
                    replay_trace_cached(&trace, digest, scheme, &config, BUDGET).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), reference);
        }
    }

    /// A noisy config must bypass the checkpoint path (fork would not
    /// be byte-equivalent) and still produce correct, deterministic
    /// results.
    #[test]
    fn noisy_configs_bypass_checkpoints_and_stay_correct() {
        let t = SampleTrace::Mixed;
        let trace = t.decode();
        let digest = t.content_digest();
        let mut config = MachineConfig::default();
        config.noise.dram_jitter = 3;
        config.noise.seed = 11;
        let reference =
            si_trace::replay_sampled(&trace, &config, &|| SchemeKind::Unprotected.build(), BUDGET)
                .unwrap();
        let a =
            replay_trace_cached(&trace, digest, SchemeKind::Unprotected, &config, BUDGET).unwrap();
        let b =
            replay_trace_cached(&trace, digest, SchemeKind::Unprotected, &config, BUDGET).unwrap();
        assert_eq!(a, reference);
        assert_eq!(b, reference);
    }
}
