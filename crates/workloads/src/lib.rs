//! Synthetic benchmark kernels for the defense evaluation (Figure 12).
//!
//! The paper measures its basic defense on SPEC CPU2017 with SimPoints on
//! gem5 (§5.3). SPEC binaries cannot run on this micro-ISA, so this crate
//! provides eight small kernels spanning the behavioural axes that
//! determine fence-defense cost (see DESIGN.md's substitution table):
//!
//! * **memory-bound, serially dependent** — [`WorkloadKind::PointerChase`]
//!   (an `mcf`-like list walk);
//! * **memory-bound, independent** — [`WorkloadKind::Stream`],
//!   [`WorkloadKind::CacheThrash`];
//! * **compute-bound** — [`WorkloadKind::Gemm`] (multiply-dense),
//!   [`WorkloadKind::Crc`] (ALU-dense);
//! * **branchy, data-dependent** — [`WorkloadKind::BranchySort`],
//!   [`WorkloadKind::HashProbe`];
//! * **balanced** — [`WorkloadKind::Mixed`].
//!
//! The harness runs each kernel to completion under a scheme and reports
//! cycles; [`slowdown`] normalizes against the unprotected baseline —
//! Figure 12's y-axis.
//!
//! Every kernel checks itself: the program computes a checksum into `r31`
//! and [`run`] verifies it against the reference interpreter, so a defense
//! or scheme that corrupts execution is caught rather than silently
//! mis-measured.

pub mod gadgets;
pub mod replay_cache;
pub mod traces;

pub use replay_cache::replay_trace_cached;
pub use traces::SampleTrace;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use si_cpu::{CoreStats, Machine, MachineConfig, Timeout};
use si_isa::{Assembler, Interpreter, Program, R1, R2, R3, R31, R4, R5, R6, R7, R8, R9};
use si_schemes::SchemeKind;

/// The benchmark kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WorkloadKind {
    /// Serial pointer chase through a shuffled linked list (`mcf`-like:
    /// every load depends on the previous one; long memory latencies
    /// dominate and branch resolution rides on them).
    PointerChase,
    /// Sequential streaming sum over a large array (`lbm`/STREAM-like).
    Stream,
    /// Blocked dense multiply-accumulate (`gemm`-like compute).
    Gemm,
    /// Insertion sort with data-dependent branches (`sort`-like,
    /// mispredict-heavy).
    BranchySort,
    /// Random probes into a hash table with hit/miss branches
    /// (`xalancbmk`-ish pointer-and-branch mix).
    HashProbe,
    /// Shift/xor checksum over data (ALU-serial, `crc`-like).
    Crc,
    /// Strided walk exceeding the L1 (cache-thrashing loads).
    CacheThrash,
    /// Interleaved loads, multiplies, and branches (balanced).
    Mixed,
    /// Weighted sampled replay of a committed `.sit` trace (SimPoint
    /// methodology, §5.3): only the trace's representative intervals
    /// are simulated and the estimate is extrapolated by cluster size.
    Trace(SampleTrace),
}

impl WorkloadKind {
    /// All kernels, in presentation order.
    pub fn all() -> Vec<WorkloadKind> {
        use WorkloadKind::*;
        vec![
            PointerChase,
            Stream,
            Gemm,
            BranchySort,
            HashProbe,
            Crc,
            CacheThrash,
            Mixed,
        ]
    }

    /// The trace-replay workloads (one per committed sample trace).
    pub fn traces() -> Vec<WorkloadKind> {
        SampleTrace::all()
            .into_iter()
            .map(WorkloadKind::Trace)
            .collect()
    }

    /// Display name (Figure 12 x-axis labels).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::PointerChase => "ptr-chase",
            WorkloadKind::Stream => "stream",
            WorkloadKind::Gemm => "gemm",
            WorkloadKind::BranchySort => "sort",
            WorkloadKind::HashProbe => "hash",
            WorkloadKind::Crc => "crc",
            WorkloadKind::CacheThrash => "thrash",
            WorkloadKind::Mixed => "mixed",
            WorkloadKind::Trace(t) => t.label(),
        }
    }

    /// Parses a kernel label (as printed by [`label`](Self::label)),
    /// case-insensitive — the workload axis of `sia sweep` grids.
    pub fn parse(text: &str) -> Option<WorkloadKind> {
        let needle = text.to_ascii_lowercase();
        WorkloadKind::all()
            .into_iter()
            .chain(WorkloadKind::traces())
            .find(|k| k.label() == needle)
    }

    /// Builds the kernel program at the given problem scale (elements /
    /// iterations; each kernel interprets it sensibly).
    pub fn program(self, scale: usize, seed: u64) -> Program {
        match self {
            WorkloadKind::PointerChase => pointer_chase(scale, seed),
            WorkloadKind::Stream => stream(scale),
            WorkloadKind::Gemm => gemm(scale),
            WorkloadKind::BranchySort => branchy_sort(scale, seed),
            WorkloadKind::HashProbe => hash_probe(scale, seed),
            WorkloadKind::Crc => crc(scale, seed),
            WorkloadKind::CacheThrash => cache_thrash(scale),
            WorkloadKind::Mixed => mixed(scale, seed),
            // Trace workloads carry their own program; scale and seed
            // were fixed at record time. Program-only decode — the
            // branch/memory/sampling sections are never parsed here.
            WorkloadKind::Trace(t) => (*t.program_shared()).clone(),
        }
    }
}

const DATA: u64 = 0x0020_0000;

/// `mcf`-like: walk a shuffled singly linked list `scale` times.
fn pointer_chase(scale: usize, seed: u64) -> Program {
    let nodes = 256usize;
    let mut order: Vec<u64> = (1..nodes as u64).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut asm = Assembler::new(0);
    // node i at DATA + i*64 holds the address of the next node.
    let mut cur = 0u64;
    for next in &order {
        asm.data_u64(DATA + cur * 64, DATA + next * 64);
        cur = *next;
    }
    asm.data_u64(DATA + cur * 64, 0); // terminator
    asm.mov_imm(R2, scale as i64);
    asm.mov_imm(R3, 0); // outer counter
    asm.mov_imm(R31, 0);
    let outer = asm.here("outer");
    asm.mov_imm(R1, DATA as i64);
    let walk = asm.here("walk");
    asm.load(R1, R1, 0);
    asm.add(R31, R31, R1);
    asm.branch_ne(R1, si_isa::R0, walk);
    asm.add_imm(R3, R3, 1);
    asm.branch_ltu(R3, R2, outer);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// STREAM-like: sum `scale` sequential words.
fn stream(scale: usize) -> Program {
    let mut asm = Assembler::new(0);
    for i in 0..scale as u64 {
        asm.data_u64(DATA + i * 8, i.wrapping_mul(0x9e37) & 0xffff);
    }
    asm.mov_imm(R1, DATA as i64);
    asm.mov_imm(R2, (DATA + scale as u64 * 8) as i64);
    asm.mov_imm(R31, 0);
    let top = asm.here("top");
    asm.load(R3, R1, 0);
    asm.add(R31, R31, R3);
    asm.add_imm(R1, R1, 8);
    asm.branch_ltu(R1, R2, top);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// `gemm`-like: `scale × scale` multiply-accumulate over in-register tiles.
fn gemm(scale: usize) -> Program {
    let n = scale.max(2) as i64;
    let mut asm = Assembler::new(0);
    asm.mov_imm(R1, 0); // i
    asm.mov_imm(R2, n);
    asm.mov_imm(R31, 0);
    let outer = asm.here("outer");
    asm.mov_imm(R3, 0); // j
    let inner = asm.here("inner");
    asm.add_imm(R4, R1, 3);
    asm.add_imm(R5, R3, 5);
    asm.mul(R6, R4, R5);
    asm.mul(R6, R6, R4);
    asm.add(R31, R31, R6);
    asm.add_imm(R3, R3, 1);
    asm.branch_ltu(R3, R2, inner);
    asm.add_imm(R1, R1, 1);
    asm.branch_ltu(R1, R2, outer);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// Insertion sort over `scale` random words (branch-heavy, data-dependent).
fn branchy_sort(scale: usize, seed: u64) -> Program {
    let n = scale.max(4) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut asm = Assembler::new(0);
    for i in 0..n {
        asm.data_u64(DATA + i * 8, rng.gen_range(0..1_000_000));
    }
    // for i in 1..n: insert a[i] into a[0..i]
    asm.mov_imm(R1, 1); // i
    asm.mov_imm(R2, n as i64);
    asm.mov_imm(R7, DATA as i64);
    asm.mov_imm(R8, 3);
    let outer = asm.here("outer");
    let inner = asm.label("inner");
    let shift = asm.label("shift");
    let place = asm.label("place");
    // key = a[i]; j = i
    asm.shl(R4, R1, R8);
    asm.add(R4, R7, R4);
    asm.load(R3, R4, 0); // key
    asm.add_imm(R5, R1, 0); // j
    asm.bind(inner);
    asm.branch_eq(R5, si_isa::R0, place);
    // prev = a[j-1]
    asm.add_imm(R6, R5, -1);
    asm.shl(R9, R6, R8);
    asm.add(R9, R7, R9);
    asm.load(R6, R9, 0);
    asm.branch_ltu(R3, R6, shift); // if key < prev: shift prev right
    asm.jump(place);
    asm.bind(shift);
    asm.shl(R4, R5, R8);
    asm.add(R4, R7, R4);
    asm.store(R6, R4, 0);
    asm.add_imm(R5, R5, -1);
    asm.jump(inner);
    asm.bind(place);
    // a[j] = key
    asm.shl(R4, R5, R8);
    asm.add(R4, R7, R4);
    asm.store(R3, R4, 0);
    asm.add_imm(R1, R1, 1);
    asm.branch_ltu(R1, R2, outer);
    // checksum: sum of array
    asm.mov_imm(R1, DATA as i64);
    asm.mov_imm(R2, (DATA + n * 8) as i64);
    asm.mov_imm(R31, 0);
    let sum = asm.here("sum");
    asm.load(R3, R1, 0);
    asm.add(R31, R31, R3);
    asm.add_imm(R1, R1, 8);
    asm.branch_ltu(R1, R2, sum);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// Hash-table probes with hit/miss branches.
fn hash_probe(scale: usize, seed: u64) -> Program {
    let buckets = 512u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut asm = Assembler::new(0);
    for b in 0..buckets {
        // Half the buckets are occupied (non-zero tag).
        let tag = if rng.gen_bool(0.5) { b * 7 + 1 } else { 0 };
        asm.data_u64(DATA + b * 8, tag);
    }
    asm.mov_imm(R1, 0); // probe counter
    asm.mov_imm(R2, scale as i64);
    asm.mov_imm(R7, DATA as i64);
    asm.mov_imm(R8, 0x9e37);
    asm.mov_imm(R9, (buckets - 1) as i64);
    asm.mov_imm(R31, 0);
    let top = asm.here("top");
    let miss = asm.label("miss");
    let next = asm.label("next");
    // bucket = (i * 0x9e37) & (buckets-1)
    asm.mul(R3, R1, R8);
    asm.and(R3, R3, R9);
    asm.mov_imm(R4, 3);
    asm.shl(R3, R3, R4);
    asm.add(R3, R7, R3);
    asm.load(R4, R3, 0);
    asm.branch_eq(R4, si_isa::R0, miss);
    asm.add(R31, R31, R4); // hit: accumulate tag
    asm.jump(next);
    asm.bind(miss);
    asm.add_imm(R31, R31, 1);
    asm.bind(next);
    asm.add_imm(R1, R1, 1);
    asm.branch_ltu(R1, R2, top);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// Serial shift/xor checksum (`crc`-like ALU chain).
fn crc(scale: usize, seed: u64) -> Program {
    let mut asm = Assembler::new(0);
    asm.mov_imm(R31, (seed & 0xffff) as i64 | 1);
    asm.mov_imm(R1, 0);
    asm.mov_imm(R2, scale as i64);
    asm.mov_imm(R4, 13);
    asm.mov_imm(R5, 7);
    asm.mov_imm(R6, 17);
    let top = asm.here("top");
    asm.shl(R3, R31, R4);
    asm.xor(R31, R31, R3);
    asm.shr(R3, R31, R5);
    asm.xor(R31, R31, R3);
    asm.shl(R3, R31, R6);
    asm.xor(R31, R31, R3);
    asm.add_imm(R1, R1, 1);
    asm.branch_ltu(R1, R2, top);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// Strided walk with a stride defeating the L1 (cache-thrashing loads).
fn cache_thrash(scale: usize) -> Program {
    let lines = 4096u64; // 256 KB footprint, larger than L1+L2 ways allow
    let mut asm = Assembler::new(0);
    // Touch only every 64th line with data; untouched reads return 0.
    for i in (0..lines).step_by(64) {
        asm.data_u64(DATA + i * 64, i);
    }
    asm.mov_imm(R1, 0);
    asm.mov_imm(R2, scale as i64);
    asm.mov_imm(R7, DATA as i64);
    asm.mov_imm(R8, 0x1fff); // lines-1 mask on a 64-line stride walk
    asm.mov_imm(R9, 521 * 64); // odd line stride
    asm.mov_imm(R5, 0); // offset
    asm.mov_imm(R31, 0);
    let top = asm.here("top");
    asm.add(R5, R5, R9);
    asm.mov_imm(R4, 18);
    asm.shl(R3, R8, R4); // mask helper (keeps ALU busy)
    asm.and(R3, R5, R3);
    asm.and(R3, R5, R8);
    asm.mov_imm(R4, 6);
    asm.shl(R3, R3, R4);
    asm.add(R3, R7, R3);
    asm.load(R4, R3, 0);
    asm.add(R31, R31, R4);
    asm.add_imm(R1, R1, 1);
    asm.branch_ltu(R1, R2, top);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// Balanced mix: load + multiply + branch per iteration.
fn mixed(scale: usize, seed: u64) -> Program {
    let words = 1024u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut asm = Assembler::new(0);
    for i in 0..words {
        asm.data_u64(DATA + i * 8, rng.gen_range(0..1024));
    }
    asm.mov_imm(R1, 0);
    asm.mov_imm(R2, scale as i64);
    asm.mov_imm(R7, DATA as i64);
    asm.mov_imm(R8, (words - 1) as i64);
    asm.mov_imm(R9, 3);
    asm.mov_imm(R31, 0);
    let top = asm.here("top");
    let skip = asm.label("skip");
    asm.mul(R3, R1, R1);
    asm.and(R3, R3, R8);
    asm.shl(R3, R3, R9);
    asm.add(R3, R7, R3);
    asm.load(R4, R3, 0);
    asm.mul(R5, R4, R4);
    asm.mov_imm(R6, 512);
    asm.branch_ltu(R4, R6, skip);
    asm.add(R31, R31, R5);
    asm.bind(skip);
    asm.add_imm(R31, R31, 1);
    asm.add_imm(R1, R1, 1);
    asm.branch_ltu(R1, R2, top);
    asm.halt();
    asm.assemble().expect("kernel assembles")
}

/// One workload measurement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Measurement {
    /// Cycles to completion.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Retired IPC.
    pub ipc: f64,
}

/// Errors from the workload harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The kernel did not halt within the cycle budget.
    Timeout(u64),
    /// The pipeline's architectural result diverged from the reference
    /// interpreter (checksum mismatch) — a correctness bug, not a
    /// performance result.
    ChecksumMismatch {
        /// What the pipeline computed.
        got: u64,
        /// What the reference interpreter computed.
        expected: u64,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Timeout(c) => write!(f, "kernel did not halt within {c} cycles"),
            WorkloadError::ChecksumMismatch { got, expected } => {
                write!(
                    f,
                    "checksum mismatch: pipeline {got:#x}, reference {expected:#x}"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<Timeout> for WorkloadError {
    fn from(t: Timeout) -> WorkloadError {
        WorkloadError::Timeout(t.cycles)
    }
}

/// Cycle budget per kernel run.
const BUDGET: u64 = 30_000_000;

/// Runs one kernel under one scheme, verifying the checksum against the
/// reference interpreter.
///
/// # Errors
///
/// [`WorkloadError::Timeout`] if the kernel stalls;
/// [`WorkloadError::ChecksumMismatch`] if the pipeline computed a wrong
/// result.
pub fn run(
    kind: WorkloadKind,
    scale: usize,
    scheme: SchemeKind,
    config: &MachineConfig,
) -> Result<Measurement, WorkloadError> {
    if let WorkloadKind::Trace(t) = kind {
        return run_trace(t, scheme, config);
    }
    let program = kind.program(scale, 42);
    let mut reference = Interpreter::new(&program);
    reference
        .run(BUDGET)
        .expect("reference interpreter completes");
    let expected = reference.reg(R31);
    let mut m = Machine::new(config.clone());
    m.load_program_with_scheme(0, &program, scheme.build());
    let cycles = m.run_core_to_halt(0, BUDGET)?;
    let got = m.core(0).reg(R31);
    if got != expected {
        return Err(WorkloadError::ChecksumMismatch { got, expected });
    }
    let stats: CoreStats = m.core(0).stats();
    Ok(Measurement {
        cycles,
        retired: stats.retired,
        ipc: stats.ipc(),
    })
}

/// Runs a committed sample trace under one scheme: weighted sampled
/// replay of the trace's representative intervals, through the
/// process-wide artifact cache ([`replay_trace_cached`]) — the decoded
/// trace, its replay plan, and per-interval warm checkpoints are shared
/// across calls, with results identical to uncached
/// [`si_trace::replay_sampled`]. The checksum verification of kernel
/// runs does not apply — a sampled replay never computes the full
/// result; architectural correctness was verified against the
/// interpreter when the trace was recorded.
fn run_trace(
    t: SampleTrace,
    scheme: SchemeKind,
    config: &MachineConfig,
) -> Result<Measurement, WorkloadError> {
    let trace = t.decode_shared();
    let out = replay_trace_cached(&trace, t.content_digest(), scheme, config, BUDGET).map_err(
        |e| match e {
            si_trace::ReplayError::Timeout { cycle_limit } => WorkloadError::Timeout(cycle_limit),
            // A fast-forward fault means the embedded program and streams
            // disagree — surface it as a checksum-style correctness error.
            si_trace::ReplayError::Interp(_) => WorkloadError::ChecksumMismatch {
                got: 0,
                expected: 1,
            },
        },
    )?;
    Ok(Measurement {
        cycles: out.cycles,
        retired: trace.total_instr,
        ipc: trace.total_instr as f64 / out.cycles.max(1) as f64,
    })
}

/// A Figure 12 row: one workload's normalized execution time under each
/// scheme.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlowdownRow {
    /// The workload.
    pub kind: WorkloadKind,
    /// Baseline (unprotected) cycles.
    pub baseline_cycles: u64,
    /// `(scheme, cycles, slowdown-multiple)` per evaluated scheme.
    pub entries: Vec<(SchemeKind, u64, f64)>,
}

/// Measures normalized execution time of `kind` under each scheme
/// (Figure 12's bars; 1.0 = unprotected).
///
/// # Errors
///
/// Propagates [`WorkloadError`] from any run.
pub fn slowdown(
    kind: WorkloadKind,
    scale: usize,
    schemes: &[SchemeKind],
    config: &MachineConfig,
) -> Result<SlowdownRow, WorkloadError> {
    let base = run(kind, scale, SchemeKind::Unprotected, config)?;
    let mut entries = Vec::with_capacity(schemes.len());
    for s in schemes {
        let m = run(kind, scale, *s, config)?;
        entries.push((*s, m.cycles, m.cycles as f64 / base.cycles as f64));
    }
    Ok(SlowdownRow {
        kind,
        baseline_cycles: base.cycles,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    #[test]
    fn every_kernel_runs_and_verifies_on_the_baseline() {
        for kind in WorkloadKind::all() {
            let m = run(kind, 64, SchemeKind::Unprotected, &cfg())
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(m.retired > 50, "{kind:?} retired {}", m.retired);
            assert!(m.ipc > 0.0);
        }
    }

    #[test]
    fn kernels_verify_under_delay_on_miss() {
        for kind in WorkloadKind::all() {
            run(kind, 48, SchemeKind::DomSpectre, &cfg())
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn fence_futuristic_is_slower_than_fence_spectre() {
        let row = slowdown(
            WorkloadKind::PointerChase,
            24,
            &[SchemeKind::FenceSpectre, SchemeKind::FenceFuturistic],
            &cfg(),
        )
        .unwrap();
        let spectre = row.entries[0].2;
        let futuristic = row.entries[1].2;
        assert!(spectre >= 1.0, "defenses never speed things up: {spectre}");
        assert!(
            futuristic >= spectre,
            "futuristic ({futuristic:.2}x) must cost at least spectre ({spectre:.2}x)"
        );
    }

    #[test]
    fn stream_prefers_baseline_over_futuristic_fence() {
        let row = slowdown(
            WorkloadKind::Stream,
            128,
            &[SchemeKind::FenceFuturistic],
            &cfg(),
        )
        .unwrap();
        assert!(
            row.entries[0].2 > 1.1,
            "fence cost visible: {:?}",
            row.entries[0].2
        );
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in WorkloadKind::all() {
            assert_eq!(WorkloadKind::parse(kind.label()), Some(kind), "{kind:?}");
        }
        assert_eq!(WorkloadKind::parse("STREAM"), Some(WorkloadKind::Stream));
        assert_eq!(WorkloadKind::parse("nope"), None);
    }

    #[test]
    fn trace_labels_parse_and_run_deterministically() {
        assert_eq!(
            WorkloadKind::parse("trace-mixed"),
            Some(WorkloadKind::Trace(SampleTrace::Mixed))
        );
        for kind in WorkloadKind::traces() {
            let a = run(kind, 48, SchemeKind::DomSpectre, &cfg())
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let b = run(kind, 48, SchemeKind::DomSpectre, &cfg()).unwrap();
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert!(a.cycles > 0 && a.retired > 0);
        }
    }

    #[test]
    fn sampled_trace_slowdown_tracks_full_replay() {
        // The acceptance bound documented in docs/TRACE_FORMAT.md:
        // per-scheme slowdown from sampled replay stays within 10% of
        // the full-trace slowdown.
        let trace = SampleTrace::Mixed.decode();
        let config = cfg();
        let slow = |scheme: SchemeKind, sampled: bool| -> f64 {
            let run = |s: SchemeKind| {
                if sampled {
                    si_trace::replay_sampled(&trace, &config, &|| s.build(), BUDGET)
                        .unwrap()
                        .cycles
                } else {
                    si_trace::replay_full(&trace, &config, s.build(), BUDGET)
                        .unwrap()
                        .cycles
                }
            };
            run(scheme) as f64 / run(SchemeKind::Unprotected) as f64
        };
        for scheme in [SchemeKind::FenceSpectre, SchemeKind::FenceFuturistic] {
            let full = slow(scheme, false);
            let sampled = slow(scheme, true);
            assert!(
                (sampled / full - 1.0).abs() < 0.10,
                "{scheme:?}: sampled slowdown {sampled:.3} vs full {full:.3}"
            );
        }
    }

    #[test]
    fn programs_are_deterministic_per_seed() {
        let a = WorkloadKind::BranchySort.program(32, 42);
        let b = WorkloadKind::BranchySort.program(32, 42);
        assert_eq!(a, b);
    }
}
