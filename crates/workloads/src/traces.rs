//! Committed sample-trace fixtures and their replay as workloads.
//!
//! Each [`SampleTrace`] names a `.sit` file under `traces/` recorded
//! from one of the benchmark kernels with `sia trace record` (interval
//! length 1024, at most 8 clusters). The bytes are embedded at compile
//! time, so trace workloads need no filesystem access at run time and
//! the harness can fold the exact bytes' digest into engine cache keys.

use std::sync::Arc;

use si_engine::ArtifactCache;
use si_isa::Program;
use si_trace::{fnv1a64, TraceFile};

/// The committed sample traces, each recorded from a branchy kernel
/// (the interesting case for the `predictor=tage` axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SampleTrace {
    /// Recorded from the `mixed` kernel (balanced loads/ALU/branches).
    Mixed,
    /// Recorded from the `sort` kernel (data-dependent branches).
    Sort,
    /// Recorded from the `hash` kernel (hit/miss branch mix).
    Hash,
}

impl SampleTrace {
    /// All committed traces, in presentation order.
    pub fn all() -> Vec<SampleTrace> {
        vec![SampleTrace::Mixed, SampleTrace::Sort, SampleTrace::Hash]
    }

    /// Workload label (`sia sweep` workload-axis value).
    pub fn label(self) -> &'static str {
        match self {
            SampleTrace::Mixed => "trace-mixed",
            SampleTrace::Sort => "trace-sort",
            SampleTrace::Hash => "trace-hash",
        }
    }

    /// The embedded `.sit` bytes.
    pub fn bytes(self) -> &'static [u8] {
        match self {
            SampleTrace::Mixed => include_bytes!(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../traces/mixed.sit"
            )),
            SampleTrace::Sort => include_bytes!(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../traces/sort.sit"
            )),
            SampleTrace::Hash => include_bytes!(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../traces/hash.sit"
            )),
        }
    }

    /// FNV-1a-64 digest of the embedded bytes. The harness XORs this
    /// into each trace unit's `config_digest`, so cached results are
    /// orphaned the moment a fixture is re-recorded.
    pub fn content_digest(self) -> u64 {
        fnv1a64(self.bytes())
    }

    /// Decodes the embedded trace.
    ///
    /// # Panics
    ///
    /// Panics if the committed fixture is corrupt — a build/fixture
    /// mismatch, not a runtime condition (`sia trace record` regenerates
    /// the files under `traces/`).
    pub fn decode(self) -> TraceFile {
        TraceFile::decode(self.bytes())
            .unwrap_or_else(|e| panic!("committed fixture {} is invalid: {e}", self.label()))
    }

    /// Decodes the embedded trace through the process-wide artifact
    /// cache (namespace `trace`, keyed by content digest): the first
    /// caller pays the decode, everyone else shares the `Arc`. With the
    /// cache disabled this decodes privately — same value either way.
    ///
    /// # Panics
    ///
    /// Same contract as [`SampleTrace::decode`].
    pub fn decode_shared(self) -> Arc<TraceFile> {
        ArtifactCache::global().get_or_build(
            "trace",
            &format!("{:016x}", self.content_digest()),
            || self.decode(),
        )
    }

    /// The trace's embedded program without decoding the stream
    /// sections (namespace `program`): `TraceFile::decode_program`
    /// validates the full payload checksum but parses only the program.
    /// Callers that need just the program (e.g. static gadget scans)
    /// skip the branch/memory/sampling decode entirely.
    ///
    /// # Panics
    ///
    /// Same contract as [`SampleTrace::decode`].
    pub fn program_shared(self) -> Arc<Program> {
        ArtifactCache::global().get_or_build(
            "program",
            &format!("{:016x}", self.content_digest()),
            || {
                TraceFile::decode_program(self.bytes()).unwrap_or_else(|e| {
                    panic!("committed fixture {} is invalid: {e}", self.label())
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_decode_and_carry_sampling_plans() {
        for t in SampleTrace::all() {
            let trace = t.decode();
            assert!(trace.total_instr > 0, "{}", t.label());
            assert!(!trace.branches.is_empty(), "{}", t.label());
            assert!(
                !trace.samples.reps.is_empty(),
                "{} has no sampling plan",
                t.label()
            );
            assert_ne!(t.content_digest(), 0);
        }
    }

    #[test]
    fn digests_are_distinct_per_fixture() {
        let d: Vec<u64> = SampleTrace::all()
            .into_iter()
            .map(|t| t.content_digest())
            .collect();
        assert_ne!(d[0], d[1]);
        assert_ne!(d[1], d[2]);
        assert_ne!(d[0], d[2]);
    }
}
