//! Attacker-side contention gadget programs.
//!
//! These are the *transmitter* halves of the speculative-interference
//! attacks, packaged as standalone programs an experiment can pin to a
//! second core of the shared [`si_cpu::Machine`]: they generate sustained
//! pressure on exactly one shared resource so that cross-core timing
//! interference (and nothing else) separates the victim's two executions.
//!
//! * [`mshr_hammer`] — a stream of independent never-repeating loads that
//!   keeps the issuing core's private MSHRs (and therefore its slice of
//!   the shared-side MSHR file, see `si_cache::Hierarchy::read_demand`)
//!   saturated: the `G^D_MSHR` pressure shape of §3.2.2, Figure 4.
//! * [`port_hammer`] — back-to-back independent square roots that keep
//!   the non-pipelined port-0 unit busy: the `G^D_NPEU` pressure shape of
//!   §3.2.2, Figure 3.
//!
//! Both run a fixed iteration count and halt, so co-scheduled runs stay
//! deterministic and bounded. The cross-core contention tests
//! (`tests/cross_core_mshr.rs`) drive them against the shared hierarchy.

use si_isa::{Assembler, Program, R1, R10, R11, R12, R13, R14, R15, R16, R17, R2, R3, R4};

/// Loads issued per [`mshr_hammer`] iteration (matches the default
/// private-MSHR count, so one iteration can fill the core's file).
pub const HAMMER_LOADS_PER_ITER: u64 = 8;

/// Address stride between hammer loads — larger than any cache line, so
/// every load misses on a distinct line.
const HAMMER_STRIDE: u64 = 4096;

/// Builds the MSHR-pressure hammer: each iteration issues
/// [`HAMMER_LOADS_PER_ITER`] independent loads to fresh, never-revisited
/// lines starting at `base`, so every one is a DRAM-level miss and up to a
/// full private-MSHR file of them is outstanding at once.
///
/// Give concurrent cores disjoint `base` regions (the program touches
/// `iters * HAMMER_LOADS_PER_ITER * 4096` bytes upward from `base`);
/// otherwise the first core's fills turn the second core's stream into
/// LLC hits and the pressure evaporates.
pub fn mshr_hammer(entry: u64, base: u64, iters: usize) -> Program {
    let mut asm = Assembler::new(entry);
    asm.mov_imm(R1, base as i64);
    asm.mov_imm(R2, iters as i64);
    asm.mov_imm(R3, 0);
    let top = asm.here("top");
    for (j, dst) in [R10, R11, R12, R13, R14, R15, R16, R17]
        .into_iter()
        .enumerate()
    {
        asm.load(dst, R1, (j as u64 * HAMMER_STRIDE) as i64);
    }
    asm.add_imm(R1, R1, (HAMMER_LOADS_PER_ITER * HAMMER_STRIDE) as i64);
    asm.add_imm(R3, R3, 1);
    asm.branch_ltu(R3, R2, top);
    asm.halt();
    asm.assemble().expect("gadget assembles")
}

/// Builds the execution-port hammer: each iteration issues eight
/// independent square roots (all operands ready), monopolising the
/// non-pipelined port-0 unit for its full latency per op.
pub fn port_hammer(entry: u64, iters: usize) -> Program {
    let mut asm = Assembler::new(entry);
    asm.mov_imm(R4, 0x5eed);
    asm.mov_imm(R2, iters as i64);
    asm.mov_imm(R3, 0);
    let top = asm.here("top");
    for dst in [R10, R11, R12, R13, R14, R15, R16, R17] {
        asm.sqrt(dst, R4);
    }
    asm.add_imm(R3, R3, 1);
    asm.branch_ltu(R3, R2, top);
    asm.halt();
    asm.assemble().expect("gadget assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_cpu::{Machine, MachineConfig};

    #[test]
    fn hammers_assemble_and_halt() {
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(0, &mshr_hammer(0, 0x4000_0000, 4));
        m.run_core_to_halt(0, 100_000).expect("mshr hammer halts");
        assert!(m.core(0).mshr_high_water() > 1, "loads overlap in flight");

        let mut m = Machine::new(MachineConfig::default());
        m.load_program(0, &port_hammer(0, 4));
        m.run_core_to_halt(0, 100_000).expect("port hammer halts");
        let port0 = m.core(0).port_issues()[0];
        assert!(port0 >= 32, "sqrts all land on port 0: {port0}");
    }
}
