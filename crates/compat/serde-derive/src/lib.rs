//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in (see `crates/compat/serde`). Each derive expands to nothing;
//! the workspace's structured output is produced by `si-harness`'s own
//! JSON writer instead of serde machinery.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
