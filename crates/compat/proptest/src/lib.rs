//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The workspace's property tests (`tests/cache_properties.rs`,
//! `tests/differential.rs`, `tests/isa_properties.rs`) are written against
//! the real proptest API. This crate — imported under the name `proptest`
//! via Cargo dependency renaming — implements the subset they use as a
//! deterministic random-input runner:
//!
//! * [`Strategy`] with `prop_map`, ranges, tuples, [`Just`], [`any`],
//!   and [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, on purpose:
//!
//! * **no shrinking** — a failing case reports its inputs via the
//!   assertion message only;
//! * **deterministic seeding** — the RNG seed is derived from the test's
//!   module path and name, so failures reproduce exactly across runs and
//!   machines (no `PROPTEST_CASES`/persistence files).

use rand::{Rng as _, SeedableRng};

/// Runner configuration (the subset of proptest's that the tests set).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: rand::StdRng,
}

impl TestRng {
    /// Seeds from an arbitrary string (the runner uses the test's full
    /// path) via FNV-1a, so every property gets its own fixed stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: rand::StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }
}

/// A generator of test inputs (the subset of proptest's `Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (i128::from(self.end) - i128::from(self.start)) as u64;
                (i128::from(self.start) + i128::from(rng.next_u64() % width)) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64);

/// Full-range value generation (the subset of proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Produces one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// One boxed generator arm of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// The strategy built by [`prop_oneof!`]: picks one arm uniformly.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Builds a union from boxed generator arms (used by `prop_oneof!`).
    pub fn new(arms: Vec<UnionArm<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.arms.len());
        (self.arms[i])(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let __s = $arm;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&__s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}",
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}",
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Declares property tests (the subset of proptest's `proptest!` the
/// workspace uses: an optional `#![proptest_config(..)]` header and
/// `#[test] fn name(pat in strategy, ...)` items).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __result {
                    ::std::panic!(
                        "property '{}' failed at case {}: {}",
                        stringify!($name),
                        __case,
                        __msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u64..10).prop_map(Op::A), Just(Op::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 5u64..10, w in -3i32..3) {
            prop_assert!((5..10).contains(&v));
            prop_assert!((-3..3).contains(&w), "w out of bounds: {w}");
        }

        #[test]
        fn vec_lengths_respect_range(ops in crate::collection::vec(op(), 2..6)) {
            prop_assert!(ops.len() >= 2 && ops.len() < 6);
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
            prop_assert_ne!(u64::from(pair.0), 99);
            prop_assert_eq!(pair.1, pair.1);
        }
    }

    #[test]
    fn deterministic_streams_reproduce() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
