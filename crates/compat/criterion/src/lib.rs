//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The workspace's benches (`crates/bench/benches/*.rs`) are written
//! against the criterion API; this crate — imported under the name
//! `criterion` via Cargo dependency renaming — implements the subset
//! they use as a plain wall-clock harness: per-benchmark mean and
//! min/max over `sample_size` samples, printed to stdout. No statistics
//! engine, no HTML reports; swap in the real crate when a registry is
//! available.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always sets up one input per routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives one benchmark routine (the stand-in for `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.durations.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.durations.push(start.elapsed());
            drop(out);
        }
    }
}

fn report(name: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().expect("non-empty");
    let max = durations.iter().max().expect("non-empty");
    println!(
        "{name:<44} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        durations.len()
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher {
            samples: self.samples,
            durations: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.prefix, id.into()), &b.durations);
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver (the stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.into(),
            samples: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher {
            samples: 10,
            durations: Vec::new(),
        };
        f(&mut b);
        report(&id.into(), &b.durations);
    }
}

/// Bundles benchmark functions into one runner (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_collect_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
