//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace builds in environments without a crates.io registry, so
//! this crate provides the *exact* API surface the simulator uses —
//! `StdRng::seed_from_u64`, `gen_range` over half-open and inclusive
//! integer ranges, and `gen_bool` — backed by **xoshiro256\*\*** seeded
//! through SplitMix64. Dependents import it under the name `rand` via
//! Cargo dependency renaming, so swapping in the real crate later is a
//! one-line manifest change.
//!
//! The stream differs from the real `StdRng` (ChaCha12); nothing in the
//! workspace depends on specific values, only on determinism per seed,
//! which this crate guarantees.

use std::ops::{Range, RangeInclusive};

/// The raw-bits source trait (the stand-in for `rand::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Integer types `gen_range` can sample uniformly — the subset of
/// `rand::distributions::uniform::SampleUniform` this workspace needs.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics on an empty range, like `rand`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                // Work in i128 so signed and full-width unsigned ranges
                // are both safe from overflow.
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let signed_width = hi_w - lo_w + i128::from(inclusive);
                assert!(signed_width > 0, "cannot sample empty range");
                let width = signed_width as u128;
                if width > u128::from(u64::MAX) {
                    return (lo_w + rng.next_u64() as i128) as $t;
                }
                (lo_w + (u128::from(rng.next_u64()) % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform sample can be drawn from — the subset of
/// `rand::distributions::uniform::SampleRange` this workspace needs.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range, like `rand`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// The subset of `rand::Rng` the workspace uses. Blanket-implemented for
/// every [`RngCore`], like the real crate.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 high bits give a uniform double in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    pub use crate::StdRng;
}

/// A deterministic xoshiro256** generator (the stand-in for
/// `rand::rngs::StdRng`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step — the recommended xoshiro seeding function.
#[inline]
fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = split_mix64(&mut sm);
        }
        // xoshiro's state must not be all zero; SplitMix64 of any seed
        // never produces four zero outputs, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
        // Degenerate inclusive range is valid and constant.
        assert_eq!(rng.gen_range(0u64..=0), 0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.gen_range(5..5);
    }
}
