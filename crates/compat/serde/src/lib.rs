//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace annotates its data types with
//! `#[derive(serde::Serialize, serde::Deserialize)]` so they are ready
//! for real serde once a registry is available. Until then this crate —
//! imported under the name `serde` via Cargo dependency renaming —
//! supplies **no-op** derive macros, keeping the annotations compiling
//! while `si-harness` hand-rolls its deterministic JSON output
//! (`si_harness::json`).
//!
//! To switch to real serde: replace the `serde = { package = "si-serde", … }`
//! lines in member manifests with the registry dependency. No source
//! changes are needed.

pub use si_serde_derive::{Deserialize, Serialize};
