//! # `si-http` — a std-only HTTP/1.1 server and client
//!
//! The container this workspace builds in has no crates.io access, so
//! `sia serve` cannot pull in a real HTTP stack. This crate is the
//! same-pattern stand-in as `si-rand`: the exact HTTP/1.1 surface the
//! daemon needs, hand-rolled on `std::net` — request parsing with hard
//! size limits, keep-alive connection handling, fixed and chunked
//! (streaming) responses, and a polling accept loop that honors a shared
//! shutdown flag so SIGTERM can drain the server cleanly.
//!
//! What it deliberately is **not**: TLS, HTTP/2, compression, trailers,
//! or an async runtime. One OS thread per connection is plenty for a
//! grid daemon whose requests each fan out across the work-stealing
//! scheduler anyway.
//!
//! The [`client`] module carries the matching minimal client (used by
//! the protocol tests and handy for scripting); CI's smoke job drives
//! the daemon with python's `http.client` instead, so the protocol is
//! also exercised by an implementation this crate does not share a line
//! with.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Per-read socket timeout. Connection threads wake at this cadence to
/// re-check the server's shutdown flag, so a SIGTERM never waits on an
/// idle keep-alive socket.
const READ_TICK: Duration = Duration::from_millis(250);

/// Idle keep-alive ticks before a connection is closed (~30 s).
const IDLE_TICKS_MAX: u32 = 120;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (`/v1/sweep`).
    pub path: String,
    /// Decoded `key=value` query parameters, in request order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// HTTP minor version: `1` for HTTP/1.1, `0` for HTTP/1.0.
    minor: u8,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_get(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether a query parameter is present with a truthy value (`1`,
    /// `true`, or bare).
    pub fn query_flag(&self, name: &str) -> bool {
        matches!(self.query_get(name), Some("" | "1" | "true"))
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 requires an explicit `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("");
        if self.minor >= 1 {
            !conn.eq_ignore_ascii_case("close")
        } else {
            conn.eq_ignore_ascii_case("keep-alive")
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending any bytes (a
    /// normal keep-alive teardown, not an error).
    Closed,
    /// The socket read timed out before any bytes arrived — the
    /// connection is idle; the caller decides whether to keep waiting.
    Idle,
    /// The bytes on the wire are not a valid HTTP/1.x request (→ 400).
    Malformed(String),
    /// Head or body exceeded the hard size limits (→ 431/413).
    TooLarge(String),
    /// The socket failed mid-request.
    Io(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one line (through `\n`) with a running size budget.
fn read_head_line<R: BufRead>(
    r: &mut R,
    budget: &mut usize,
    first: bool,
) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let available = match r.fill_buf() {
            Ok(buf) => buf,
            Err(e) if is_timeout(&e) => {
                if first && line.is_empty() {
                    return Err(ReadError::Idle);
                }
                return Err(ReadError::Malformed("timed out mid-request head".into()));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        };
        if available.is_empty() {
            if first && line.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Malformed("connection closed mid-head".into()));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if take > *budget {
            return Err(ReadError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        *budget -= take;
        line.extend_from_slice(&available[..take]);
        r.consume(take);
        if newline.is_some() {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()));
        }
    }
}

/// Decodes `%xx` escapes and `+` in a query component.
fn url_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 2;
                    }
                    Err(_) => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads and parses one request from `r`. `first` marks the first
/// request of a connection (timeouts there are [`ReadError::Idle`],
/// mid-stream timeouts are malformed).
pub fn read_request<R: BufRead>(r: &mut R, first: bool) -> Result<Request, ReadError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_head_line(r, &mut budget, first)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    let minor = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        other => {
            return Err(ReadError::Malformed(format!(
                "unsupported version {other:?}"
            )))
        }
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ReadError::Malformed(format!("bad method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(ReadError::Malformed(format!("bad target {target:?}")));
    }
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query: Vec<(String, String)> = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(kv), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    loop {
        let line = read_head_line(r, &mut budget, false)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Malformed(format!("bad header name: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query,
        headers,
        body: Vec::new(),
        minor,
    };
    if request.header("transfer-encoding").is_some() {
        // The daemon never needs chunked *requests*; rejecting them is
        // simpler and safer than desync-prone partial support.
        return Err(ReadError::Malformed(
            "chunked request bodies are not supported".into(),
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {len:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(ReadError::TooLarge(format!(
                "request body of {len} bytes exceeds {MAX_BODY_BYTES}"
            )));
        }
        let mut body = vec![0u8; len];
        let mut read = 0;
        while read < len {
            match r.read(&mut body[read..]) {
                Ok(0) => return Err(ReadError::Malformed("connection closed mid-body".into())),
                Ok(n) => read += n,
                Err(e) if is_timeout(&e) => {
                    return Err(ReadError::Malformed("timed out mid-body".into()))
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
        request.body = body;
    }
    Ok(request)
}

/// Canonical reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Status",
    }
}

/// The write half of one request/response exchange, handed to the
/// server's handler. Exactly one of [`respond`](Responder::respond) /
/// [`begin_chunked`](Responder::begin_chunked) must be called; if the
/// handler returns without responding, the server sends a 500.
pub struct Responder<'a> {
    stream: &'a mut TcpStream,
    keep_alive: bool,
    responded: bool,
    /// A mid-stream write failure (client disconnect): poisons
    /// keep-alive so the connection closes.
    broken: bool,
}

impl<'a> Responder<'a> {
    fn head(
        &mut self,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
        framing: &str,
    ) -> io::Result<()> {
        self.responded = true;
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n{framing}",
            reason(status)
        );
        for (name, value) in extra {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(if self.keep_alive {
            "connection: keep-alive\r\n\r\n"
        } else {
            "connection: close\r\n\r\n"
        });
        self.stream.write_all(head.as_bytes())
    }

    /// Sends a complete response with a `Content-Length` body.
    pub fn respond(&mut self, status: u16, content_type: &str, body: &[u8]) {
        self.respond_with(status, content_type, &[], body);
    }

    /// [`respond`](Self::respond) with extra response headers.
    pub fn respond_with(
        &mut self,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
        body: &[u8],
    ) {
        let sent = self
            .head(
                status,
                content_type,
                extra,
                &format!("content-length: {}\r\n", body.len()),
            )
            .and_then(|()| self.stream.write_all(body))
            .and_then(|()| self.stream.flush());
        if sent.is_err() {
            self.broken = true;
        }
    }

    /// Starts a chunked (streaming) response. Returns `None` when the
    /// head could not be written (client already gone).
    pub fn begin_chunked(
        &mut self,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
    ) -> Option<ChunkedBody<'_>> {
        match self.head(
            status,
            content_type,
            extra,
            "transfer-encoding: chunked\r\n",
        ) {
            Ok(()) => Some(ChunkedBody {
                stream: self.stream,
                broken: &mut self.broken,
                finished: false,
            }),
            Err(_) => {
                self.broken = true;
                None
            }
        }
    }
}

/// The body of a chunked response. Writes become HTTP chunks; a client
/// disconnect turns further writes into no-ops (the handler keeps
/// running but [`is_broken`](Self::is_broken) reports it so long jobs
/// can stop early). [`finish`](Self::finish) sends the terminal chunk.
pub struct ChunkedBody<'a> {
    stream: &'a mut TcpStream,
    broken: &'a mut bool,
    finished: bool,
}

impl ChunkedBody<'_> {
    /// Sends one chunk (empty input sends nothing — an empty chunk
    /// would terminate the stream).
    pub fn write_chunk(&mut self, data: &[u8]) {
        if *self.broken || data.is_empty() {
            return;
        }
        let frame = format!("{:x}\r\n", data.len());
        let sent = self
            .stream
            .write_all(frame.as_bytes())
            .and_then(|()| self.stream.write_all(data))
            .and_then(|()| self.stream.write_all(b"\r\n"))
            .and_then(|()| self.stream.flush());
        if sent.is_err() {
            *self.broken = true;
        }
    }

    /// Whether the client disconnected mid-stream.
    pub fn is_broken(&self) -> bool {
        *self.broken
    }

    /// Sends the terminal zero-length chunk.
    pub fn finish(mut self) {
        self.finished = true;
        if !*self.broken && self.stream.write_all(b"0\r\n\r\n").is_err() {
            *self.broken = true;
        }
    }
}

impl Drop for ChunkedBody<'_> {
    fn drop(&mut self) {
        // A dropped-unfinished stream must not leave the connection
        // reusable: the client would misparse the next response.
        if !self.finished {
            *self.broken = true;
        }
    }
}

/// A polling HTTP server: one OS thread per connection, keep-alive
/// handled in a per-connection loop, shutdown via a shared flag the
/// accept loop re-checks between polls.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            active: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shutdown flag: set it (from a signal handler, another
    /// thread, or a test) and [`serve`](Self::serve) returns after
    /// draining live connections.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accepts connections and dispatches requests to `handler` until
    /// the shutdown flag is set, then waits (bounded) for in-flight
    /// connections to drain. Each connection runs its own keep-alive
    /// loop on its own thread.
    pub fn serve<H>(self, handler: H)
    where
        H: Fn(&Request, &mut Responder) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let handler = Arc::clone(&handler);
                    let shutdown = Arc::clone(&self.shutdown);
                    let active = Arc::clone(&self.active);
                    active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(stream, &*handler, &shutdown);
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if is_timeout(&e) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Drain: connection threads see the flag at their next read
        // tick; give them a bounded grace period.
        for _ in 0..200 {
            if self.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// One connection's keep-alive loop.
fn handle_connection<H>(stream: TcpStream, handler: &H, shutdown: &AtomicBool)
where
    H: Fn(&Request, &mut Responder),
{
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut first = true;
    let mut idle_ticks = 0u32;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader, first) {
            Ok(request) => {
                first = false;
                idle_ticks = 0;
                let keep_alive = request.keep_alive();
                let mut responder = Responder {
                    stream: &mut write_half,
                    keep_alive,
                    responded: false,
                    broken: false,
                };
                handler(&request, &mut responder);
                if !responder.responded {
                    responder.respond(500, "text/plain", b"handler produced no response\n");
                }
                if responder.broken || !keep_alive {
                    return;
                }
            }
            Err(ReadError::Idle) => {
                idle_ticks += 1;
                if idle_ticks > IDLE_TICKS_MAX {
                    return;
                }
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Malformed(e)) => {
                respond_and_close(&mut write_half, 400, &format!("bad request: {e}\n"));
                return;
            }
            Err(ReadError::TooLarge(e)) => {
                let status = if e.contains("head") { 431 } else { 413 };
                respond_and_close(&mut write_half, status, &format!("{e}\n"));
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

/// Writes a terse close-delimited error response (used for requests too
/// broken to answer politely).
fn respond_and_close(stream: &mut TcpStream, status: u16, body: &str) {
    let _ = stream.write_all(
        format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: text/plain\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            reason(status),
            body.len(),
        )
        .as_bytes(),
    );
    let _ = stream.flush();
}

/// The matching minimal client: enough to drive the daemon from tests
/// and scripts (fixed bodies, chunked decoding, keep-alive reuse).
pub mod client {
    use super::*;

    /// A parsed response.
    #[derive(Debug, Clone)]
    pub struct ClientResponse {
        /// Status code from the status line.
        pub status: u16,
        /// Header pairs, names lowercased.
        pub headers: Vec<(String, String)>,
        /// The (de-chunked) body.
        pub body: Vec<u8>,
    }

    impl ClientResponse {
        /// First value of a header, by lowercase name.
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str())
        }

        /// The body as UTF-8 text.
        pub fn text(&self) -> String {
            String::from_utf8_lossy(&self.body).into_owned()
        }
    }

    /// A keep-alive client connection.
    pub struct Conn {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Conn {
        /// Connects to `addr`.
        pub fn connect(addr: &SocketAddr) -> io::Result<Conn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(600)))?;
            let writer = stream.try_clone()?;
            Ok(Conn {
                reader: BufReader::new(stream),
                writer,
            })
        }

        /// Sends one request and reads the complete response.
        pub fn send(
            &mut self,
            method: &str,
            target: &str,
            headers: &[(&str, &str)],
            body: &[u8],
        ) -> io::Result<ClientResponse> {
            self.send_head(method, target, headers, body)?;
            self.read_response()
        }

        /// Sends a request without waiting for the response (the
        /// disconnect-mid-stream test hangs up here).
        pub fn send_head(
            &mut self,
            method: &str,
            target: &str,
            headers: &[(&str, &str)],
            body: &[u8],
        ) -> io::Result<()> {
            let mut head = format!("{method} {target} HTTP/1.1\r\nhost: sia\r\n");
            for (name, value) in headers {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
            head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
            self.writer.write_all(head.as_bytes())?;
            self.writer.write_all(body)?;
            self.writer.flush()
        }

        /// Sends raw bytes (for malformed-request protocol tests).
        pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.writer.write_all(bytes)?;
            self.writer.flush()
        }

        fn read_line(&mut self) -> io::Result<String> {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed",
                ));
            }
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(line)
        }

        /// Reads one response (Content-Length, chunked, or
        /// close-delimited).
        pub fn read_response(&mut self) -> io::Result<ClientResponse> {
            let status_line = self.read_line()?;
            let status: u16 = status_line
                .split_ascii_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad status line {status_line:?}"),
                    )
                })?;
            let mut headers = Vec::new();
            loop {
                let line = self.read_line()?;
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
                }
            }
            let header = |name: &str| {
                headers
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v.as_str())
            };
            let mut body = Vec::new();
            if header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
                loop {
                    let size_line = self.read_line()?;
                    let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad chunk size {size_line:?}"),
                        )
                    })?;
                    let mut chunk = vec![0u8; size + 2]; // data + CRLF
                    self.reader.read_exact(&mut chunk)?;
                    if size == 0 {
                        break;
                    }
                    chunk.truncate(size);
                    body.extend_from_slice(&chunk);
                }
            } else if let Some(len) = header("content-length") {
                let len: usize = len.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
                body = vec![0u8; len];
                self.reader.read_exact(&mut body)?;
            } else {
                self.reader.read_to_end(&mut body)?;
            }
            Ok(ClientResponse {
                status,
                headers,
                body,
            })
        }

        /// Reads exactly one chunk of a chunked response body whose head
        /// has already been consumed by… nothing. Convenience for
        /// streaming tests: call [`read_streaming_head`] first.
        pub fn read_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
            let size_line = self.read_line()?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
            let mut chunk = vec![0u8; size + 2];
            self.reader.read_exact(&mut chunk)?;
            if size == 0 {
                return Ok(None);
            }
            chunk.truncate(size);
            Ok(Some(chunk))
        }

        /// Reads a response's status line and headers only (for
        /// incremental consumption of a chunked stream).
        pub fn read_streaming_head(&mut self) -> io::Result<(u16, Vec<(String, String)>)> {
            let status_line = self.read_line()?;
            let status: u16 = status_line
                .split_ascii_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
            let mut headers = Vec::new();
            loop {
                let line = self.read_line()?;
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
                }
            }
            Ok((status, headers))
        }
    }

    /// One-shot request on a fresh connection.
    pub fn request(
        addr: &SocketAddr,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut conn = Conn::connect(addr)?;
        let mut all = headers.to_vec();
        all.push(("connection", "close"));
        conn.send(method, target, &all, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn start_echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let flag = server.shutdown_flag();
        std::thread::spawn(move || {
            server.serve(|req, resp| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/ping") => resp.respond(200, "text/plain", b"pong"),
                ("POST", "/echo") => {
                    let body = req.body.clone();
                    resp.respond_with(200, "application/octet-stream", &[("x-len", "set")], &body)
                }
                ("GET", "/stream") => {
                    if let Some(mut body) = resp.begin_chunked(200, "text/plain", &[]) {
                        for i in 0..5 {
                            body.write_chunk(format!("part-{i}\n").as_bytes());
                        }
                        body.finish();
                    }
                }
                ("GET", _) => resp.respond(404, "text/plain", b"no such path\n"),
                _ => resp.respond(405, "text/plain", b"method not allowed\n"),
            });
        });
        (addr, flag)
    }

    #[test]
    fn fixed_and_chunked_responses_round_trip() {
        let (addr, flag) = start_echo_server();
        let resp = client::request(&addr, "GET", "/ping", &[], b"").expect("ping");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"pong");
        let payload = vec![7u8; 10_000];
        let resp = client::request(&addr, "POST", "/echo", &[], &payload).expect("echo");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, payload);
        assert_eq!(resp.header("x-len"), Some("set"));
        let resp = client::request(&addr, "GET", "/stream", &[], b"").expect("stream");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.text(),
            "part-0\npart-1\npart-2\npart-3\npart-4\n",
            "chunks reassemble in order"
        );
        flag.store(true, Ordering::SeqCst);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let (addr, flag) = start_echo_server();
        let mut conn = client::Conn::connect(&addr).expect("connect");
        for i in 0..3 {
            let resp = conn.send("GET", "/ping", &[], b"").expect("request");
            assert_eq!(resp.status, 200, "request {i}");
            assert_eq!(resp.header("connection"), Some("keep-alive"));
        }
        flag.store(true, Ordering::SeqCst);
    }

    #[test]
    fn errors_get_status_codes_not_panics() {
        let (addr, flag) = start_echo_server();
        // 404 and 405 from the handler.
        assert_eq!(
            client::request(&addr, "GET", "/nope", &[], b"")
                .expect("404")
                .status,
            404
        );
        assert_eq!(
            client::request(&addr, "PUT", "/ping", &[], b"")
                .expect("405")
                .status,
            405
        );
        // Malformed request line: 400 from the server core.
        let mut conn = client::Conn::connect(&addr).expect("connect");
        conn.send_raw(b"NOT A REQUEST\r\n\r\n").expect("send");
        let resp = conn.read_response().expect("400");
        assert_eq!(resp.status, 400);
        // Oversized declared body: 413.
        let mut conn = client::Conn::connect(&addr).expect("connect");
        conn.send_raw(
            format!(
                "POST /echo HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        )
        .expect("send");
        let resp = conn.read_response().expect("413");
        assert_eq!(resp.status, 413);
        flag.store(true, Ordering::SeqCst);
    }

    #[test]
    fn client_disconnect_mid_stream_does_not_kill_the_server() {
        let served = Arc::new(AtomicUsize::new(0));
        let served_in = Arc::clone(&served);
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let flag = server.shutdown_flag();
        std::thread::spawn(move || {
            server.serve(move |_req, resp| {
                served_in.fetch_add(1, Ordering::SeqCst);
                if let Some(mut body) = resp.begin_chunked(200, "text/plain", &[]) {
                    for _ in 0..100 {
                        body.write_chunk(&[b'x'; 4096]);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    body.finish();
                }
            });
        });
        // Start a stream and hang up after the head.
        {
            let mut conn = client::Conn::connect(&addr).expect("connect");
            conn.send_head("GET", "/stream", &[], b"").expect("send");
            let (status, _) = conn.read_streaming_head().expect("head");
            assert_eq!(status, 200);
            // Drop: TCP reset mid-stream.
        }
        std::thread::sleep(Duration::from_millis(50));
        // The server survives and serves the next client.
        let resp = client::request(&addr, "GET", "/after", &[], b"").expect("still alive");
        assert_eq!(resp.status, 200);
        assert!(served.load(Ordering::SeqCst) >= 2);
        flag.store(true, Ordering::SeqCst);
    }

    #[test]
    fn shutdown_flag_stops_the_accept_loop() {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let flag = server.shutdown_flag();
        let joined = std::thread::spawn(move || {
            server.serve(|_req, resp| resp.respond(200, "text/plain", b"ok"))
        });
        assert_eq!(
            client::request(&addr, "GET", "/", &[], b"")
                .expect("ok")
                .status,
            200
        );
        flag.store(true, Ordering::SeqCst);
        joined.join().expect("serve returns after shutdown");
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The listener socket may linger briefly; a connect that
                // succeeds must at least never be served.
                std::thread::sleep(Duration::from_millis(100));
                true
            }
        );
    }

    #[test]
    fn query_and_header_parsing() {
        let raw = b"POST /v1/sweep?stream=1&grid=defense&x=a%20b HTTP/1.1\r\n\
                    Host: sia\r\nContent-Type: application/json\r\ncontent-length: 2\r\n\r\n{}";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader, true).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweep");
        assert!(req.query_flag("stream"));
        assert_eq!(req.query_get("grid"), Some("defense"));
        assert_eq!(req.query_get("x"), Some("a b"));
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.body, b"{}");
        assert!(req.keep_alive());
    }
}
