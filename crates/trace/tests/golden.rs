//! Golden test tying `docs/TRACE_FORMAT.md`, `traces/example.sit`,
//! and the in-tree encoder together: the hex dump printed in the
//! format document must be byte-for-byte what the encoder produces
//! and what is committed on disk.

use si_trace::{example_trace, TraceFile};

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Extracts the worked example's bytes from the format document: the
/// dump is the only fenced block whose lines look like `xxd` output
/// (`NNNNNNNN: hh…`).
fn bytes_from_doc(doc: &str) -> Vec<u8> {
    let mut bytes = Vec::new();
    for line in doc.lines() {
        let Some((off, rest)) = line.split_once(": ") else {
            continue;
        };
        if off.len() != 8 || u64::from_str_radix(off, 16).is_err() {
            continue;
        }
        // Hex columns end at the two-space gutter before the ASCII
        // rendering.
        let hex = rest.split("  ").next().unwrap_or(rest);
        for group in hex.split_whitespace() {
            assert!(
                group.len() % 2 == 0,
                "odd-length hex group {group:?} in doc dump line {line:?}"
            );
            for i in (0..group.len()).step_by(2) {
                let b = u8::from_str_radix(&group[i..i + 2], 16)
                    .unwrap_or_else(|_| panic!("bad hex {group:?} in {line:?}"));
                bytes.push(b);
            }
        }
    }
    bytes
}

#[test]
fn doc_fixture_and_encoder_agree() {
    let doc = std::fs::read_to_string(repo_path("docs/TRACE_FORMAT.md"))
        .expect("docs/TRACE_FORMAT.md exists");
    let doc_bytes = bytes_from_doc(&doc);
    assert!(
        !doc_bytes.is_empty(),
        "no hex dump found in docs/TRACE_FORMAT.md"
    );

    let encoded = example_trace().encode();
    assert_eq!(
        doc_bytes, encoded,
        "hex dump in docs/TRACE_FORMAT.md differs from the encoder; \
         regenerate the doc's dump (xxd traces/example.sit) after \
         `sia trace example`"
    );

    let fixture =
        std::fs::read(repo_path("traces/example.sit")).expect("traces/example.sit committed");
    assert_eq!(
        fixture, encoded,
        "traces/example.sit is stale; regenerate with `sia trace example`"
    );

    // The dump decodes back to the builder's trace, and the digest
    // quoted in the document matches.
    assert_eq!(TraceFile::decode(&doc_bytes).unwrap(), example_trace());
    let digest = format!("{:#018x}", TraceFile::content_digest(&doc_bytes));
    assert!(
        doc.contains(&digest),
        "document does not quote the fixture digest {digest}"
    );
}
