//! Differential property test for the staged sampled replay: the
//! [`ReplayPlan`]-based implementation must match a monolithic
//! reference — a verbatim port of the pre-plan `replay_sampled`, with
//! its full per-interval memory-snapshot injection — cycle for cycle
//! on freshly recorded traces.
//!
//! This is the proof that the plan split (entry-PC sharing, memory
//! deltas instead of snapshots, precomputed warm-up sequences) is a
//! pure refactor of the replay semantics: any divergence in estimated
//! cycles, simulated instructions, or interval count fails here before
//! it can silently skew sweep results.

use proptest::prelude::*;

use si_cpu::{AgentOp, Machine, MachineConfig, SpeculationScheme, Unprotected};
use si_isa::{Assembler, Interpreter, Program, Reg, NUM_REGS, R1, R2, R3, R4};
use si_trace::{record, RecordConfig, ReplayOutcome, ReplayPlan, TraceFile};

const TRAIN_WINDOW: usize = 65_536;
const BUDGET: u64 = 10_000_000;

/// A loop kernel with data-dependent loads and overlapping 8-byte
/// stores (consecutive base addresses), exercising the plan's
/// last-write-wins memory-delta capture.
fn kernel(iters: i64, seed: u8) -> Program {
    let mut asm = Assembler::new(0);
    asm.mov_imm(R1, 0);
    asm.mov_imm(R2, iters);
    asm.mov_imm(R4, 0);
    let top = asm.here("top");
    asm.add_imm(R1, R1, 1);
    asm.load(R3, R1, 0x1000);
    asm.add(R4, R4, R3);
    asm.store(R4, R1, 0x4000);
    asm.branch_ltu(R1, R2, top);
    asm.halt();
    let mut p = asm.assemble().expect("kernel assembles");
    for i in 0..64u8 {
        p.write_data(
            0x1000 + u64::from(i),
            &[seed.wrapping_mul(7).wrapping_add(i * 3)],
        );
    }
    p
}

fn unprotected() -> Box<dyn SpeculationScheme> {
    Box::new(Unprotected)
}

/// Verbatim port of the monolithic pre-plan `replay_sampled`: one
/// interpreter fast-forward interleaved with per-interval machine
/// construction, including the full `mem_snapshot` injection and the
/// per-interval `dedup_keep_last` recomputation the plan replaced.
fn replay_sampled_reference(
    trace: &TraceFile,
    config: &MachineConfig,
    max_cycles: u64,
) -> ReplayOutcome {
    let samples = &trace.samples;
    assert!(!samples.reps.is_empty(), "reference needs a sampling plan");
    let mut interp = Interpreter::new(&trace.program);
    let mut est_cycles = 0u64;
    let mut simulated_instr = 0u64;
    let mut intervals_run = 0u64;
    let mut touched_lines: Vec<u64> = Vec::new();
    let mut branch_hist: Vec<(u64, bool, u64)> = Vec::new();
    for rep in &samples.reps {
        let start_instr = rep.interval * samples.interval_len;
        while interp.retired() < start_instr && !interp.halted() {
            let pc = interp.pc();
            let (_, ev) = interp.step_event().expect("fast-forward succeeds");
            if let Some(m) = ev.mem {
                touched_lines.push(m.addr & !63);
            }
            if let Some(taken) = ev.branch_taken {
                branch_hist.push((pc, taken, interp.pc()));
            }
        }
        if interp.halted() && interp.retired() < start_instr {
            break;
        }
        let remaining = trace.total_instr.saturating_sub(start_instr);
        let target = samples.interval_len.min(remaining);
        if target == 0 {
            continue;
        }
        let mut sub = trace.program.clone();
        sub.set_entry(interp.pc());
        let mut m = Machine::new(config.clone());
        m.load_program_with_scheme(0, &sub, unprotected());
        for i in 1..NUM_REGS {
            let r = Reg::new(i as u8).expect("register index in range");
            m.core_mut(0).set_reg(r, interp.reg(r));
        }
        for (addr, byte) in interp.mem_snapshot() {
            m.memory_mut().write_u8(addr, byte);
        }
        for line in dedup_keep_last_reference(&touched_lines) {
            m.run_op(AgentOp::Access {
                core: 0,
                addr: line,
            });
        }
        let mut code_lines: Vec<u64> = trace.program.iter().map(|(pc, _)| pc & !63).collect();
        code_lines.dedup();
        for line in code_lines {
            m.run_op(AgentOp::FetchAccess {
                core: 0,
                addr: line,
            });
        }
        let skip = branch_hist.len().saturating_sub(TRAIN_WINDOW);
        for &(pc, taken, target_pc) in &branch_hist[skip..] {
            m.core_mut(0).train_branch(pc, taken, target_pc);
        }
        while !m.core(0).halted() && m.core(0).stats().retired < target {
            assert!(m.cycle() < max_cycles, "reference replay timed out");
            m.advance(max_cycles);
        }
        let stats = m.core(0).stats();
        est_cycles += stats.cycles * rep.cluster_size;
        simulated_instr += stats.retired;
        intervals_run += 1;
    }
    ReplayOutcome {
        cycles: est_cycles,
        simulated_instr,
        intervals_run,
    }
}

/// The pre-plan `BTreeMap` last-occurrence dedup, kept verbatim so the
/// reference stays an independent implementation.
fn dedup_keep_last_reference(lines: &[u64]) -> Vec<u64> {
    let mut last_pos = std::collections::BTreeMap::new();
    for (i, &l) in lines.iter().enumerate() {
        last_pos.insert(l, i);
    }
    let mut ordered: Vec<(usize, u64)> = last_pos.into_iter().map(|(l, i)| (i, l)).collect();
    ordered.sort_unstable();
    ordered.into_iter().map(|(_, l)| l).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn plan_replay_matches_monolithic_reference(
        iters in 16i64..160,
        seed in any::<u8>(),
        interval_len in prop_oneof![Just(64u64), Just(128u64), Just(256u64)],
        clusters in 2usize..5,
    ) {
        let p = kernel(iters, seed);
        let trace = record(
            &p,
            &RecordConfig {
                interval_len,
                max_clusters: clusters,
                warmup_intervals: 1,
                max_steps: 1_000_000,
            },
        )
        .expect("kernel records");
        // warmup_intervals=1 pins the first interval as an exact
        // singleton, so every recorded trace carries a sampling plan.
        prop_assert!(!trace.samples.reps.is_empty());
        let config = MachineConfig::default();
        let reference = replay_sampled_reference(&trace, &config, BUDGET);
        let plan = ReplayPlan::build(&trace).expect("plan builds");
        let planned =
            si_trace::replay_planned(&plan, &config, &unprotected, BUDGET).expect("plan replays");
        let sampled =
            si_trace::replay_sampled(&trace, &config, &unprotected, BUDGET).expect("replays");
        prop_assert_eq!(planned, reference, "plan-based replay diverged from the reference");
        prop_assert_eq!(sampled, reference, "replay_sampled diverged from the reference");
    }
}
