//! Property tests over the `.sit` container: arbitrary well-formed
//! traces round-trip bit-exactly, and random corruption is always
//! surfaced as a clean typed error.

use proptest::prelude::*;

use si_isa::{Assembler, Program, R1, R2, R3};
use si_trace::{DecodeError, MemRecord, Representative, Samples, TraceFile};

fn program_with(data: &[(u64, u8)], instrs: usize) -> Program {
    let mut asm = Assembler::new(0x40);
    asm.mov_imm(R1, 1);
    asm.mov_imm(R2, 2);
    for _ in 0..instrs {
        asm.add(R3, R1, R2);
    }
    asm.halt();
    let mut p = asm.assemble().expect("assembles");
    for &(addr, byte) in data {
        p.write_data(addr, &[byte]);
    }
    p
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec((0x1000u64..0x2000, any::<u8>()), 0..16),
        0usize..12,
    )
        .prop_map(|(data, instrs)| program_with(&data, instrs))
}

fn arb_accesses() -> impl Strategy<Value = Vec<MemRecord>> {
    proptest::collection::vec(
        (any::<u64>(), any::<bool>()).prop_map(|(addr, store)| MemRecord { addr, store }),
        0..64,
    )
}

/// Builds a structurally valid sampling plan: strictly ascending
/// representative intervals with weights summing to `n_intervals`.
fn arb_samples() -> impl Strategy<Value = Samples> {
    (1u64..10_000, 0u64..40, any::<bool>()).prop_map(|(interval_len, n_intervals, with_reps)| {
        let mut reps = Vec::new();
        if with_reps && n_intervals > 0 {
            // Every third interval is a representative carrying its
            // gap's weight; the final one absorbs the remainder.
            let mut covered = 0;
            while covered < n_intervals {
                let size = 3.min(n_intervals - covered);
                reps.push(Representative {
                    interval: covered,
                    cluster_size: size,
                });
                covered += size;
            }
        }
        Samples {
            interval_len,
            n_intervals,
            reps,
        }
    })
}

fn arb_trace() -> impl Strategy<Value = TraceFile> {
    (
        arb_program(),
        proptest::collection::vec(any::<bool>(), 0..256),
        arb_accesses(),
        arb_samples(),
        any::<u32>(),
    )
        .prop_map(|(program, branches, accesses, samples, total)| TraceFile {
            program,
            branches,
            accesses,
            samples,
            total_instr: u64::from(total),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn encode_decode_roundtrip(trace in arb_trace()) {
        let bytes = trace.encode();
        let back = TraceFile::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn encoding_is_deterministic(trace in arb_trace()) {
        prop_assert_eq!(trace.encode(), trace.encode());
    }

    #[test]
    fn truncation_is_a_clean_error(trace in arb_trace(), cut in any::<u16>()) {
        let bytes = trace.encode();
        let len = usize::from(cut) % bytes.len();
        prop_assert_eq!(
            TraceFile::decode(&bytes[..len]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn bit_flips_never_decode_silently(trace in arb_trace(), pos in any::<u32>(), bit in 0u8..8) {
        let mut bytes = trace.encode();
        let i = pos as usize % bytes.len();
        bytes[i] ^= 1 << bit;
        // The two reserved header bytes are the only ones outside the
        // checksum's reach; a flip there must be ignored.
        if let Ok(back) = TraceFile::decode(&bytes) {
            prop_assert!((6..8).contains(&i), "undetected flip at byte {}", i);
            prop_assert_eq!(back, trace);
        }
    }
}
