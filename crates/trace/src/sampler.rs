//! SimPoint-style interval sampling: basic-block vectors, random
//! projection, and a deterministic k-means clusterer — all in pure
//! `std`, no floats in the resulting file.
//!
//! The recorder slices execution into fixed-length instruction
//! intervals and builds one **basic-block vector** (BBV) per interval:
//! a map from block-leader pc to instructions executed inside that
//! block during the interval (Sherwood et al., ASPLOS 2002). Intervals
//! with similar BBVs exercise the same code and, to first order, the
//! same microarchitectural behaviour — so simulating one
//! representative per cluster and scaling by cluster size estimates
//! the full run.
//!
//! # Determinism invariants
//!
//! Everything here is a pure function of the BBV list and `max_k`:
//!
//! * projection vectors come from [SplitMix64](splitmix64) seeded by
//!   the block key — no shared RNG stream, so results cannot depend on
//!   map iteration order (keys are iterated in `BTreeMap` order
//!   anyway);
//! * initial centroids are evenly spaced interval indices, not random
//!   draws;
//! * all argmin/argmax ties break toward the lowest index;
//! * f64 arithmetic is evaluated in a fixed order, so results are
//!   bit-identical across runs and thread counts.

use std::collections::BTreeMap;

use crate::format::Representative;

/// Dimensionality of the random projection. 16 is plenty for the
/// handful of distinct blocks the corpus programs execute; SimPoint
/// itself uses 15.
pub const PROJ_DIMS: usize = 16;

/// Lloyd iterations. Clustering converges in a handful of iterations
/// at this scale; a fixed count keeps the runtime bounded and the
/// output a pure function of the input.
const KMEANS_ITERS: usize = 25;

/// SplitMix64 — a tiny stateless mixer used to derive projection
/// matrix entries from `(block key, dimension)` pairs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Projection-matrix entry for `(key, dim)`, uniform in [-1, 1).
fn proj_entry(key: u64, dim: usize) -> f64 {
    let bits = splitmix64(key ^ ((dim as u64) << 56) ^ 0x5157_5632_0001);
    ((bits >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// Projects one BBV into `PROJ_DIMS` dimensions and normalizes by the
/// interval's total instruction count, so a short final interval is
/// comparable to full ones.
fn project(bbv: &BTreeMap<u64, u64>) -> [f64; PROJ_DIMS] {
    let mut v = [0.0f64; PROJ_DIMS];
    let total: u64 = bbv.values().sum();
    if total == 0 {
        return v;
    }
    for (&key, &count) in bbv {
        let w = count as f64;
        for (d, slot) in v.iter_mut().enumerate() {
            *slot += w * proj_entry(key, d);
        }
    }
    for slot in &mut v {
        *slot /= total as f64;
    }
    v
}

fn dist2(a: &[f64; PROJ_DIMS], b: &[f64; PROJ_DIMS]) -> f64 {
    let mut s = 0.0;
    for d in 0..PROJ_DIMS {
        let diff = a[d] - b[d];
        s += diff * diff;
    }
    s
}

/// Clusters the per-interval BBVs into at most `max_k` clusters and
/// returns one [`Representative`] per non-empty cluster, ascending by
/// interval index, with cluster sizes summing to `bbvs.len()`.
pub fn simpoints(bbvs: &[BTreeMap<u64, u64>], max_k: usize) -> Vec<Representative> {
    let n = bbvs.len();
    if n == 0 {
        return Vec::new();
    }
    let k = max_k.clamp(1, n);
    let points: Vec<[f64; PROJ_DIMS]> = bbvs.iter().map(project).collect();

    // Evenly spaced initial centroids — deterministic and well spread
    // for the phase-structured executions traces actually contain.
    let mut centroids: Vec<[f64; PROJ_DIMS]> = (0..k).map(|i| points[i * n / k]).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..KMEANS_ITERS {
        // Assignment step: nearest centroid, ties to the lowest index.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist2(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        // Update step: centroid = mean of members; empty clusters keep
        // their previous centroid (deterministic, and harmless — an
        // empty cluster simply yields no representative).
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let mut sum = [0.0f64; PROJ_DIMS];
            let mut count = 0u64;
            for (i, p) in points.iter().enumerate() {
                if assign[i] == c {
                    for d in 0..PROJ_DIMS {
                        sum[d] += p[d];
                    }
                    count += 1;
                }
            }
            if count > 0 {
                for d in 0..PROJ_DIMS {
                    centroid[d] = sum[d] / count as f64;
                }
            }
        }
    }

    // Representative per cluster: the member closest to the centroid
    // (lowest interval index on ties); weight = cluster size.
    let mut reps = Vec::new();
    for (c, centroid) in centroids.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        let mut size = 0u64;
        for (i, p) in points.iter().enumerate() {
            if assign[i] != c {
                continue;
            }
            size += 1;
            let d = dist2(p, centroid);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if let Some((i, _)) = best {
            reps.push(Representative {
                interval: i as u64,
                cluster_size: size,
            });
        }
    }
    reps.sort_by_key(|r| r.interval);
    reps
}

/// Like [`simpoints`], but pins the first `warmup` intervals as
/// always-simulated singleton clusters and clusters only the rest.
///
/// Early intervals carry the run's cold-start transient (compulsory
/// cache misses, untrained predictor). Their BBVs are often identical
/// to steady-state intervals — the code path is the same; only the
/// microarchitectural state differs, which BBVs cannot see — so plain
/// k-means happily elects a transient interval to represent a large
/// steady-state cluster and overestimates the whole run. Simulating
/// the warm-up intervals exactly (weight 1 each) removes that bias at
/// the cost of `warmup` extra sample intervals.
pub fn simpoints_with_warmup(
    bbvs: &[BTreeMap<u64, u64>],
    max_k: usize,
    warmup: usize,
) -> Vec<Representative> {
    let w = warmup.min(bbvs.len());
    let mut reps: Vec<Representative> = (0..w)
        .map(|i| Representative {
            interval: i as u64,
            cluster_size: 1,
        })
        .collect();
    for r in simpoints(&bbvs[w..], max_k) {
        reps.push(Representative {
            interval: r.interval + w as u64,
            cluster_size: r.cluster_size,
        });
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbv(pairs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn sizes_sum_to_interval_count_and_reps_ascend() {
        let bbvs: Vec<_> = (0..10)
            .map(|i| bbv(&[(0x40 * (i % 3), 100), (0x999, i)]))
            .collect();
        let reps = simpoints(&bbvs, 4);
        assert!(!reps.is_empty() && reps.len() <= 4);
        assert_eq!(reps.iter().map(|r| r.cluster_size).sum::<u64>(), 10);
        assert!(reps.windows(2).all(|w| w[0].interval < w[1].interval));
    }

    #[test]
    fn identical_intervals_collapse_to_one_cluster() {
        let bbvs: Vec<_> = (0..8).map(|_| bbv(&[(0x100, 50)])).collect();
        let reps = simpoints(&bbvs, 4);
        // All points coincide; every member is equidistant (0) from
        // every centroid, so ties send them all to cluster 0.
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].cluster_size, 8);
        assert_eq!(reps[0].interval, 0);
    }

    #[test]
    fn two_phases_get_two_representatives() {
        // Five intervals in block A, five in block B: a 2-phase run.
        let mut bbvs: Vec<_> = (0..5).map(|_| bbv(&[(0x1000, 64)])).collect();
        bbvs.extend((0..5).map(|_| bbv(&[(0x8000, 64)])));
        let reps = simpoints(&bbvs, 2);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].cluster_size, 5);
        assert_eq!(reps[1].cluster_size, 5);
        assert!(reps[0].interval < 5 && reps[1].interval >= 5);
    }

    #[test]
    fn deterministic_across_calls() {
        let bbvs: Vec<_> = (0..20)
            .map(|i: u64| bbv(&[(i.wrapping_mul(0x40) % 0x200, 10 + i), (0x7000, 3)]))
            .collect();
        assert_eq!(simpoints(&bbvs, 5), simpoints(&bbvs, 5));
    }

    #[test]
    fn warmup_intervals_are_pinned_as_singletons() {
        // Eight identical intervals: without warm-up pinning they
        // collapse to one cluster represented by interval 0.
        let bbvs: Vec<_> = (0..8).map(|_| bbv(&[(0x100, 50)])).collect();
        let reps = simpoints_with_warmup(&bbvs, 4, 3);
        assert_eq!(reps.len(), 4);
        for (i, r) in reps.iter().take(3).enumerate() {
            assert_eq!((r.interval, r.cluster_size), (i as u64, 1));
        }
        assert_eq!(reps[3].cluster_size, 5);
        assert!(reps[3].interval >= 3);
        // Warm-up larger than the run degrades to all-singletons.
        let all = simpoints_with_warmup(&bbvs, 4, 100);
        assert_eq!(all.len(), 8);
        assert!(all.iter().all(|r| r.cluster_size == 1));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(simpoints(&[], 4).is_empty());
        let one = vec![bbv(&[(0, 1)])];
        let reps = simpoints(&one, 8);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].cluster_size, 1);
    }
}
