//! The **replay plan**: stage 1 of sampled replay, split out so it can
//! be computed once per trace and shared.
//!
//! [`replay_sampled`](crate::replay_sampled) used to interleave two very
//! different kinds of work per representative interval: a scheme- and
//! config-*independent* interpreter fast-forward (architectural
//! registers, memory, touched lines, branch history at the interval
//! boundary) and a scheme-*dependent* cycle-level simulation. The
//! fast-forward repeats identically for every (scheme, predictor,
//! trial) cell over the same trace, so [`ReplayPlan::build`] hoists it
//! into a standalone, immutable artifact:
//!
//! * one fast-forward pass over the whole trace, shared by all
//!   intervals;
//! * per interval, the **memory delta since the previous representative
//!   interval** (only bytes written by stores) instead of a full memory
//!   snapshot — [`ReplayPlan::warm_machine`] replays the deltas
//!   cumulatively, which reproduces the snapshot contents exactly
//!   because machine memory is content-addressed (a byte overwritten
//!   with its own value is unobservable);
//! * the deduplicated warm-up line sequence, the bounded branch-history
//!   window, and the program's code lines, precomputed.
//!
//! Stage 2 — [`ReplayPlan::warm_machine`] + [`ReplayPlan::run_interval`]
//! or the [`replay_planned`] convenience loop — is pure consumption: it
//! never touches the interpreter. Callers that cache (si-workloads, via
//! the si-engine artifact cache) capture the warmed machine with
//! `si_cpu::MachineCheckpoint` and fork it per trial instead of
//! re-warming.
//!
//! Everything here is deterministic: a plan is a pure function of the
//! trace, and plan-based replay is cycle-for-cycle identical to the
//! former monolithic implementation (a property test holds the two
//! against each other).

use std::sync::Arc;

use si_cpu::{AgentOp, CoreStats, Machine, MachineConfig, SpeculationScheme};
use si_isa::{Interpreter, Program, Reg, NUM_REGS};

use crate::format::TraceFile;
use crate::replay::{ReplayError, ReplayOutcome};

/// Most recent resolved branches replayed into a sample interval's
/// fresh predictor. Enough to saturate both predictor organizations'
/// tables; bounding it keeps per-interval warm-up cost independent of
/// how deep into the trace the interval sits.
pub(crate) const TRAIN_WINDOW: usize = 65_536;

/// Everything stage 2 needs to warm a machine for one representative
/// interval, captured at the interval's start boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInterval {
    /// Interval index in the trace's sampling plan.
    pub interval: u64,
    /// How many intervals this representative stands for.
    pub cluster_size: u64,
    /// PC at the interval boundary — the warmed machine's fetch entry.
    pub entry_pc: u64,
    /// Architectural register file at the boundary (`regs[0]` unused).
    pub regs: [u64; NUM_REGS],
    /// Bytes written by stores since the **previous** plan interval
    /// (last value per address, ascending). Warm-up applies the deltas
    /// of intervals `0..=i` in order, reproducing the full memory image
    /// without snapshotting it per interval.
    pub mem_delta: Vec<(u64, u8)>,
    /// Data lines touched before the boundary, deduplicated to each
    /// line's last use, in last-use order — the LRU warm-up feed.
    pub warm_lines: Vec<u64>,
    /// The most recent resolved branches before the boundary (at most
    /// [`TRAIN_WINDOW`]): `(pc, taken, target)` predictor training food.
    pub branch_window: Vec<(u64, bool, u64)>,
    /// Instructions to simulate (the interval length, shortened at the
    /// trace tail).
    pub target_instr: u64,
}

/// The scheme- and config-independent product of one interpreter
/// fast-forward pass over a trace: everything needed to build a warmed
/// machine at any representative interval. Immutable once built —
/// share it (`Arc`) across schemes, trials, and threads freely.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPlan {
    /// The embedded program, shared unmodified by every interval
    /// machine (the entry PC travels separately per interval).
    pub program: Arc<Program>,
    /// The program's code lines (deduplicated, ascending) — fetched
    /// into every interval machine's I-side.
    pub code_lines: Vec<u64>,
    /// One entry per representative interval that has instructions to
    /// simulate, ascending by interval index.
    pub intervals: Vec<PlanInterval>,
}

impl ReplayPlan {
    /// Runs the single fast-forward pass and captures per-interval
    /// warm-up state. Pure function of `trace`.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Interp`] if fast-forwarding faults (corrupt trace
    /// or program/trace mismatch).
    pub fn build(trace: &TraceFile) -> Result<ReplayPlan, ReplayError> {
        let samples = &trace.samples;
        let mut interp = Interpreter::new(&trace.program);
        let mut intervals = Vec::with_capacity(samples.reps.len());
        // Data lines touched and branches resolved during fast-forward,
        // in program order — the warm-up feed for each interval.
        let mut touched_lines: Vec<u64> = Vec::new();
        let mut branch_hist: Vec<(u64, bool, u64)> = Vec::new();
        // Store-written bytes since the last captured interval (last
        // value per address); drained into each interval's delta.
        let mut pending_writes: std::collections::HashMap<u64, u8> =
            std::collections::HashMap::new();
        for rep in &samples.reps {
            let start_instr = rep.interval * samples.interval_len;
            while interp.retired() < start_instr && !interp.halted() {
                let pc = interp.pc();
                let (_, ev) = interp.step_event().map_err(ReplayError::Interp)?;
                if let Some(m) = ev.mem {
                    touched_lines.push(m.addr & !63);
                    if m.store {
                        // Stores write one little-endian u64; read the
                        // committed bytes back rather than re-deriving
                        // the operand.
                        for (i, byte) in interp.read_u64(m.addr).to_le_bytes().iter().enumerate() {
                            pending_writes.insert(m.addr + i as u64, *byte);
                        }
                    }
                }
                if let Some(taken) = ev.branch_taken {
                    branch_hist.push((pc, taken, interp.pc()));
                }
            }
            if interp.halted() && interp.retired() < start_instr {
                // Sampling plan points past the end of execution; the
                // decoder bounds rep indices, so this only happens for a
                // trace whose recorded totals are internally
                // inconsistent.
                break;
            }
            let remaining = trace.total_instr.saturating_sub(start_instr);
            let target = samples.interval_len.min(remaining);
            if target == 0 {
                continue;
            }
            let mut mem_delta: Vec<(u64, u8)> = pending_writes.drain().collect();
            mem_delta.sort_unstable();
            let mut regs = [0u64; NUM_REGS];
            for (i, slot) in regs.iter_mut().enumerate().skip(1) {
                let r = Reg::new(i as u8).expect("register index in range");
                *slot = interp.reg(r);
            }
            let skip = branch_hist.len().saturating_sub(TRAIN_WINDOW);
            intervals.push(PlanInterval {
                interval: rep.interval,
                cluster_size: rep.cluster_size,
                entry_pc: interp.pc(),
                regs,
                mem_delta,
                warm_lines: dedup_keep_last(&touched_lines),
                branch_window: branch_hist[skip..].to_vec(),
                target_instr: target,
            });
        }
        let mut code_lines: Vec<u64> = trace.program.iter().map(|(pc, _)| pc & !63).collect();
        code_lines.dedup();
        Ok(ReplayPlan {
            program: Arc::new(trace.program.clone()),
            code_lines,
            intervals,
        })
    }

    /// Builds the fully warmed machine for plan interval `idx` (by
    /// position in [`ReplayPlan::intervals`]): architectural injection,
    /// cumulative memory deltas, cache re-touch, code-line fetch, and
    /// predictor training — everything up to (but not including) the
    /// measured simulation. The result is exactly the machine the
    /// monolithic replay used to build in place, so capturing it with
    /// `si_cpu::MachineCheckpoint` and forking per trial is
    /// byte-equivalent to rebuilding (for configs that draw no noise
    /// randomness before the snapshot — quiet-noise presets).
    pub fn warm_machine(
        &self,
        idx: usize,
        config: &MachineConfig,
        scheme: Box<dyn SpeculationScheme>,
    ) -> Machine {
        let iv = &self.intervals[idx];
        let mut m = Machine::new(config.clone());
        m.load_shared_program_with_scheme(0, Arc::clone(&self.program), scheme, iv.entry_pc);
        for (i, &v) in iv.regs.iter().enumerate().skip(1) {
            let r = Reg::new(i as u8).expect("register index in range");
            m.core_mut(0).set_reg(r, v);
        }
        // Memory deltas are cumulative: replaying segments 0..=idx in
        // order leaves every byte at its last-written value — the same
        // contents the old full-snapshot injection produced.
        for segment in &self.intervals[..=idx] {
            for &(addr, byte) in &segment.mem_delta {
                m.memory_mut().write_u8(addr, byte);
            }
        }
        // Functional warm-up: replay the pre-interval working set into
        // the cache hierarchy, oldest-first so LRU leaves the machine
        // holding what the full run would hold, then touch the code
        // lines (the frontend of the real run has them resident).
        for &line in &iv.warm_lines {
            m.run_op(AgentOp::Access {
                core: 0,
                addr: line,
            });
        }
        for &line in &self.code_lines {
            m.run_op(AgentOp::FetchAccess {
                core: 0,
                addr: line,
            });
        }
        // Predictor warm-up: re-train on the most recent resolved
        // branches (bounded so huge traces stay cheap to sample).
        for &(pc, taken, target) in &iv.branch_window {
            m.core_mut(0).train_branch(pc, taken, target);
        }
        m
    }

    /// Simulates plan interval `idx` on a machine produced by
    /// [`ReplayPlan::warm_machine`] (or forked from a checkpoint of
    /// one), returning the core's statistics at interval end.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Timeout`] when `max_cycles` is exhausted before
    /// the interval's instructions retire.
    pub fn run_interval(
        &self,
        idx: usize,
        m: &mut Machine,
        max_cycles: u64,
    ) -> Result<CoreStats, ReplayError> {
        let target = self.intervals[idx].target_instr;
        while !m.core(0).halted() && m.core(0).stats().retired < target {
            if m.cycle() >= max_cycles {
                return Err(ReplayError::Timeout {
                    cycle_limit: max_cycles,
                });
            }
            m.advance(max_cycles);
        }
        Ok(m.core(0).stats())
    }
}

/// Stage 2 without caching: warm a fresh machine per interval and
/// simulate, accumulating the weighted estimate. With a freshly built
/// plan this is exactly the former monolithic
/// [`replay_sampled`](crate::replay_sampled) (which now delegates
/// here); with a shared plan the fast-forward cost is gone.
pub fn replay_planned(
    plan: &ReplayPlan,
    config: &MachineConfig,
    scheme_factory: &dyn Fn() -> Box<dyn SpeculationScheme>,
    max_cycles: u64,
) -> Result<ReplayOutcome, ReplayError> {
    let mut est_cycles = 0u64;
    let mut simulated_instr = 0u64;
    let mut intervals_run = 0u64;
    for idx in 0..plan.intervals.len() {
        let mut m = plan.warm_machine(idx, config, scheme_factory());
        let stats = plan.run_interval(idx, &mut m, max_cycles)?;
        est_cycles += stats.cycles * plan.intervals[idx].cluster_size;
        simulated_instr += stats.retired;
        intervals_run += 1;
    }
    Ok(ReplayOutcome {
        cycles: est_cycles,
        simulated_instr,
        intervals_run,
    })
}

/// Deduplicates line addresses keeping each line's **last** occurrence,
/// preserving relative order — so warming oldest-first ends with the
/// most recently used lines, matching what LRU would retain. A flat
/// hash map plus one sort of the surviving `(position, line)` pairs;
/// the result is fully determined by the input (last positions are
/// unique), so the unordered map never leaks iteration order.
fn dedup_keep_last(lines: &[u64]) -> Vec<u64> {
    let mut last_pos = std::collections::HashMap::with_capacity(1024);
    for (i, &l) in lines.iter().enumerate() {
        last_pos.insert(l, i);
    }
    let mut ordered: Vec<(usize, u64)> = last_pos.into_iter().map(|(l, i)| (i, l)).collect();
    ordered.sort_unstable();
    ordered.into_iter().map(|(_, l)| l).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_last_occurrence_in_order() {
        assert_eq!(dedup_keep_last(&[]), Vec::<u64>::new());
        assert_eq!(
            dedup_keep_last(&[64, 128, 64, 192, 128]),
            vec![64, 192, 128]
        );
        assert_eq!(dedup_keep_last(&[0, 0, 0]), vec![0]);
    }
}
