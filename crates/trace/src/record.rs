//! Trace recording: run a program through the architectural
//! interpreter, capturing branch outcomes, memory accesses, and
//! per-interval basic-block vectors, then choose sample intervals.

use std::collections::BTreeMap;
use std::fmt;

use si_isa::{InterpError, Interpreter, Program, StepOutcome, INSTR_BYTES};

use crate::format::{MemRecord, Samples, TraceFile};
use crate::sampler;

/// Recording parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecordConfig {
    /// Instructions per sampling interval.
    pub interval_len: u64,
    /// Maximum number of clusters. The sampling plan carries at most
    /// `warmup_intervals + max_clusters` representatives.
    pub max_clusters: usize,
    /// Leading intervals pinned as always-simulated singletons; see
    /// [`sampler::simpoints_with_warmup`].
    pub warmup_intervals: usize,
    /// Instruction budget; recording fails rather than spin forever.
    pub max_steps: u64,
}

impl Default for RecordConfig {
    fn default() -> RecordConfig {
        RecordConfig {
            interval_len: 1_000,
            max_clusters: 8,
            warmup_intervals: 4,
            max_steps: 30_000_000,
        }
    }
}

/// Errors while recording a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The program faulted in the interpreter.
    Interp(InterpError),
    /// The program did not halt within the step budget.
    Budget(u64),
    /// `interval_len` was zero.
    ZeroInterval,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Interp(e) => write!(f, "program faulted while recording: {e}"),
            RecordError::Budget(n) => write!(f, "program did not halt within {n} steps"),
            RecordError::ZeroInterval => write!(f, "interval length must be nonzero"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<InterpError> for RecordError {
    fn from(e: InterpError) -> RecordError {
        RecordError::Interp(e)
    }
}

/// Runs `program` to completion in the architectural interpreter and
/// returns a [`TraceFile`] embedding the program, its branch and
/// memory streams, and a SimPoint-style sampling plan.
///
/// Basic blocks are delimited dynamically: a block ends at every
/// control transfer (taken or fall-through-diverging next pc) and at
/// `Halt`. An interval boundary may split a block; the split halves
/// accrue to the same leader key in adjacent intervals, which is the
/// standard BBV treatment.
pub fn record(program: &Program, cfg: &RecordConfig) -> Result<TraceFile, RecordError> {
    if cfg.interval_len == 0 {
        return Err(RecordError::ZeroInterval);
    }
    let mut interp = Interpreter::new(program);
    let mut branches = Vec::new();
    let mut accesses = Vec::new();
    let mut bbvs: Vec<BTreeMap<u64, u64>> = Vec::new();
    let mut cur = BTreeMap::new();
    let mut block_start = program.entry();
    let mut block_len = 0u64;
    let mut in_interval = 0u64;

    while !interp.halted() {
        if interp.retired() >= cfg.max_steps {
            return Err(RecordError::Budget(cfg.max_steps));
        }
        let pc = interp.pc();
        let (outcome, ev) = interp.step_event()?;
        block_len += 1;
        in_interval += 1;
        if let Some(taken) = ev.branch_taken {
            branches.push(taken);
        }
        if let Some(m) = ev.mem {
            accesses.push(MemRecord {
                addr: m.addr,
                store: m.store,
            });
        }
        let transferred = outcome == StepOutcome::Halted || interp.pc() != pc + INSTR_BYTES;
        if transferred {
            *cur.entry(block_start).or_insert(0) += block_len;
            block_start = interp.pc();
            block_len = 0;
        }
        if in_interval == cfg.interval_len {
            if block_len > 0 {
                // Interval boundary splits a block: charge the executed
                // half here; the rest accrues to the same leader next
                // interval.
                *cur.entry(block_start).or_insert(0) += block_len;
                block_len = 0;
            }
            bbvs.push(std::mem::take(&mut cur));
            in_interval = 0;
        }
    }
    if block_len > 0 {
        *cur.entry(block_start).or_insert(0) += block_len;
    }
    if !cur.is_empty() {
        bbvs.push(cur);
    }

    let reps = sampler::simpoints_with_warmup(&bbvs, cfg.max_clusters, cfg.warmup_intervals);
    Ok(TraceFile {
        program: program.clone(),
        branches,
        accesses,
        samples: Samples {
            interval_len: cfg.interval_len,
            n_intervals: bbvs.len() as u64,
            reps,
        },
        total_instr: interp.retired(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_isa::{Assembler, R1, R2, R3};

    fn loop_program(iters: i64) -> Program {
        let mut asm = Assembler::new(0);
        asm.mov_imm(R1, 0);
        asm.mov_imm(R2, iters);
        let top = asm.here("top");
        asm.add_imm(R1, R1, 1);
        asm.load(R3, R1, 0x1000);
        asm.store(R3, R1, 0x2000);
        asm.branch_ltu(R1, R2, top);
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn records_branches_memory_and_intervals() {
        let p = loop_program(10);
        let t = record(
            &p,
            &RecordConfig {
                interval_len: 8,
                max_clusters: 3,
                warmup_intervals: 0,
                max_steps: 10_000,
            },
        )
        .unwrap();
        // 10 branch executions: 9 taken, final not taken.
        assert_eq!(t.branches.len(), 10);
        assert_eq!(t.branches.iter().filter(|&&b| b).count(), 9);
        assert!(!t.branches[9]);
        // One load + one store per iteration, alternating.
        assert_eq!(t.accesses.len(), 20);
        assert!(!t.accesses[0].store && t.accesses[1].store);
        // 2 setup + 10 * 4 loop body + 1 halt.
        assert_eq!(t.total_instr, 43);
        assert_eq!(t.samples.n_intervals, 43u64.div_ceil(8));
        let total: u64 = t.samples.reps.iter().map(|r| r.cluster_size).sum();
        assert_eq!(total, t.samples.n_intervals);
        // The recorded file round-trips.
        assert_eq!(TraceFile::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn budget_exceeded_is_an_error() {
        let p = loop_program(1_000_000);
        let err = record(
            &p,
            &RecordConfig {
                interval_len: 100,
                max_clusters: 2,
                warmup_intervals: 0,
                max_steps: 50,
            },
        )
        .unwrap_err();
        assert_eq!(err, RecordError::Budget(50));
    }

    #[test]
    fn zero_interval_is_an_error() {
        let p = loop_program(1);
        let cfg = RecordConfig {
            interval_len: 0,
            ..RecordConfig::default()
        };
        assert_eq!(record(&p, &cfg).unwrap_err(), RecordError::ZeroInterval);
    }
}
