//! The tiny worked example of `docs/TRACE_FORMAT.md`.
//!
//! [`example_trace`] is the trace whose byte-for-byte hex dump appears
//! in the format document, committed as `traces/example.sit`
//! (regenerate with `sia trace example`). A golden test asserts that
//! document, fixture, and this builder all agree, so none of the three
//! can drift silently.

use si_isa::{Assembler, Program, R1, R2, R3};

use crate::format::TraceFile;
use crate::record::{record, RecordConfig};

/// The example program: a three-iteration load/store loop.
///
/// ```text
/// 0x40: mov   r1, 0
/// 0x48: mov   r2, 3
/// 0x50: load  r3, [r1 + 0x100]   ; top
/// 0x58: store r3, [r1 + 0x108]
/// 0x60: add   r1, r1, 1
/// 0x68: bltu  r1, r2, top
/// 0x70: halt
/// ```
///
/// with the 8 data bytes of little-endian `0x2a` at `0x100`. It
/// executes 15 instructions, 3 conditional branches (taken, taken,
/// not-taken) and 6 memory accesses.
pub fn example_program() -> Program {
    let mut asm = Assembler::new(0x40);
    asm.mov_imm(R1, 0);
    asm.mov_imm(R2, 3);
    let top = asm.here("top");
    asm.load(R3, R1, 0x100);
    asm.store(R3, R1, 0x108);
    asm.add_imm(R1, R1, 1);
    asm.branch_ltu(R1, R2, top);
    asm.halt();
    asm.data_u64(0x100, 0x2a);
    asm.assemble().expect("example program assembles")
}

/// Records [`example_program`] with interval length 4, at most 2
/// clusters, and one pinned warm-up interval — exactly the parameters
/// the format document's worked example uses.
pub fn example_trace() -> TraceFile {
    record(
        &example_program(),
        &RecordConfig {
            interval_len: 4,
            max_clusters: 2,
            warmup_intervals: 1,
            max_steps: 1_000,
        },
    )
    .expect("example program records")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_has_the_documented_shape() {
        let t = example_trace();
        assert_eq!(t.total_instr, 15);
        assert_eq!(t.branches, vec![true, true, false]);
        assert_eq!(t.accesses.len(), 6);
        assert_eq!(t.samples.interval_len, 4);
        assert_eq!(t.samples.n_intervals, 4);
        let sizes: u64 = t.samples.reps.iter().map(|r| r.cluster_size).sum();
        assert_eq!(sizes, 4);
        assert_eq!(TraceFile::decode(&t.encode()).unwrap(), t);
    }
}
