//! The `.sit` wire format: a versioned, checksummed, delta-encoded
//! binary container for one program's branch outcomes, memory accesses,
//! and sampling plan.
//!
//! `docs/TRACE_FORMAT.md` is the **normative byte-level specification**
//! of everything this module reads and writes (header layout, varint and
//! zigzag encodings, run-length branch stream, section order, checksum,
//! versioning rule); this module is its implementation. The committed
//! fixture `traces/example.sit` is the worked example of that document,
//! and a golden test asserts the two agree byte for byte.

use std::fmt;

use si_isa::{decode as decode_instr, encode as encode_instr, Program};

/// File magic: `SITR` (Speculative-Interference TRace).
pub const MAGIC: [u8; 4] = *b"SITR";

/// Current format version. Decoders reject any other value: the
/// versioning rule is bump-and-reject, never silent reinterpretation.
pub const VERSION: u16 = 1;

/// Header length in bytes (magic, version, reserved, payload length,
/// checksum) — the payload starts here.
pub const HEADER_BYTES: usize = 24;

/// FNV-1a 64-bit over `bytes` — the checksum of the payload section and
/// the content digest folded into engine unit specs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One recorded data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRecord {
    /// Effective byte address.
    pub addr: u64,
    /// `true` for a store.
    pub store: bool,
}

/// One sampled representative interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Representative {
    /// Index of the representative interval (0-based, in execution order).
    pub interval: u64,
    /// Cluster size: how many intervals this one stands for. The
    /// replay weight is `cluster_size / n_intervals` — stored as an
    /// integer numerator so the file carries no floats.
    pub cluster_size: u64,
}

/// The sampling plan: fixed-length intervals plus the representative
/// set chosen by the SimPoint-style clusterer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Samples {
    /// Instructions per interval.
    pub interval_len: u64,
    /// Total number of intervals (the last may be short).
    pub n_intervals: u64,
    /// Representatives, ascending by interval index; cluster sizes sum
    /// to `n_intervals`.
    pub reps: Vec<Representative>,
}

/// An in-memory trace: the embedded program, its architectural branch
/// and memory streams, and the sampling plan. Encode with
/// [`TraceFile::encode`]; decode with [`TraceFile::decode`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// The traced program (instructions, initial data, entry point) —
    /// embedded so a trace file is self-contained and replayable.
    pub program: Program,
    /// Conditional-branch outcomes in execution order.
    pub branches: Vec<bool>,
    /// Data-memory accesses in execution order.
    pub accesses: Vec<MemRecord>,
    /// The sampling plan.
    pub samples: Samples,
    /// Total instructions executed by the traced run.
    pub total_instr: u64,
}

/// Errors decoding a `.sit` file. Corrupt input of any kind — truncated,
/// bit-flipped, malformed varints, inconsistent section counts — decodes
/// to one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The version field is not [`VERSION`].
    BadVersion(u16),
    /// The file ends before its declared payload length.
    Truncated,
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum declared in the header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// A structurally invalid payload (bad varint, inconsistent counts,
    /// undecodable instruction, …).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a .sit trace (bad magic)"),
            DecodeError::BadVersion(v) => {
                write!(f, "unsupported trace version {v} (supported: {VERSION})")
            }
            DecodeError::Truncated => write!(f, "trace file is truncated"),
            DecodeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "trace checksum mismatch (header {expected:#018x}, payload {actual:#018x})"
            ),
            DecodeError::Malformed(what) => write!(f, "malformed trace payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends `v` as an LEB128 varint (7 data bits per byte, high bit set
/// on continuation bytes; at most 10 bytes).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` as an LEB128 varint that may exceed 64 bits — the
/// memory-record word packs a store bit under a full-range zigzag
/// delta, so it needs 65. Values within u64 range encode byte-for-byte
/// identically to [`put_varint`].
fn put_wide_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed delta into an unsigned varint payload.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked payload reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(DecodeError::Malformed("unexpected end of payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64_le(&mut self) -> Result<u64, DecodeError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DecodeError::Malformed("unexpected end of payload"))?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(buf))
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let data = (byte & 0x7f) as u64;
            if shift == 63 && data > 1 {
                return Err(DecodeError::Malformed("varint overflows 64 bits"));
            }
            v |= data << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::Malformed("varint longer than 10 bytes"))
    }

    /// A varint capped at 65 bits — the memory-record word. Still at
    /// most 10 bytes on the wire.
    fn wide_varint(&mut self) -> Result<u128, DecodeError> {
        let mut v: u128 = 0;
        for shift in (0..70).step_by(7) {
            let byte = self.u8()?;
            let data = (byte & 0x7f) as u128;
            if shift == 63 && data > 3 {
                return Err(DecodeError::Malformed("memory record overflows 65 bits"));
            }
            v |= data << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::Malformed("varint longer than 10 bytes"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl TraceFile {
    /// Serializes to the `.sit` wire format (see `docs/TRACE_FORMAT.md`).
    ///
    /// # Panics
    ///
    /// Panics if the embedded program contains an unencodable
    /// instruction — impossible for programs built by the assembler.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        // Section 1: program.
        put_varint(&mut payload, self.program.entry());
        put_varint(&mut payload, self.program.len() as u64);
        let mut prev_pc = 0u64;
        for (pc, instr) in self.program.iter() {
            put_varint(&mut payload, (pc - prev_pc) / si_isa::INSTR_BYTES);
            let word = encode_instr(instr).expect("assembled instruction encodes");
            payload.extend_from_slice(&word.to_le_bytes());
            prev_pc = pc + si_isa::INSTR_BYTES;
        }
        let data: Vec<(u64, u8)> = self.program.data().collect();
        put_varint(&mut payload, data.len() as u64);
        let mut prev_addr = 0u64;
        for (addr, byte) in data {
            put_varint(&mut payload, addr - prev_addr);
            payload.push(byte);
            prev_addr = addr + 1;
        }
        // Section 2: branch outcomes as taken-run-lengths.
        put_varint(&mut payload, self.branches.len() as u64);
        if let Some(&first) = self.branches.first() {
            payload.push(first as u8);
            let mut run = 0u64;
            let mut current = first;
            for &b in &self.branches {
                if b == current {
                    run += 1;
                } else {
                    put_varint(&mut payload, run);
                    current = b;
                    run = 1;
                }
            }
            put_varint(&mut payload, run);
        }
        // Section 3: memory accesses as zigzag address deltas + store bit.
        put_varint(&mut payload, self.accesses.len() as u64);
        let mut prev = 0i64;
        for a in &self.accesses {
            let delta = (a.addr as i64).wrapping_sub(prev);
            // 65 bits: a full-range zigzag delta above the store bit.
            put_wide_varint(
                &mut payload,
                ((zigzag(delta) as u128) << 1) | a.store as u128,
            );
            prev = a.addr as i64;
        }
        // Section 4: sampling plan.
        put_varint(&mut payload, self.samples.interval_len);
        put_varint(&mut payload, self.samples.n_intervals);
        put_varint(&mut payload, self.samples.reps.len() as u64);
        for r in &self.samples.reps {
            put_varint(&mut payload, r.interval);
            put_varint(&mut payload, r.cluster_size);
        }
        // Section 5: totals.
        put_varint(&mut payload, self.total_instr);

        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a `.sit` file.
    ///
    /// # Errors
    ///
    /// Any structural problem — wrong magic or version, truncation, a
    /// checksum mismatch (bit flips), malformed sections — returns a
    /// [`DecodeError`]; corrupt input never panics.
    pub fn decode(bytes: &[u8]) -> Result<TraceFile, DecodeError> {
        let payload = TraceFile::checked_payload(bytes)?;
        let mut r = Reader::new(payload);
        // Section 1: program.
        let program = TraceFile::read_program(&mut r)?;
        // Section 2: branches.
        let n_branches = r.varint()?;
        let mut branches = Vec::new();
        if n_branches > 0 {
            if n_branches > payload.len() as u64 * 8 {
                return Err(DecodeError::Malformed("branch count exceeds payload"));
            }
            let mut current = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::Malformed("first branch outcome not 0/1")),
            };
            while (branches.len() as u64) < n_branches {
                let run = r.varint()?;
                if run == 0 || run > n_branches - branches.len() as u64 {
                    return Err(DecodeError::Malformed("branch run-length inconsistent"));
                }
                branches.extend(std::iter::repeat_n(current, run as usize));
                current = !current;
            }
        }
        // Section 3: memory accesses.
        let n_accesses = r.varint()?;
        if n_accesses > payload.len() as u64 {
            return Err(DecodeError::Malformed("access count exceeds payload"));
        }
        let mut accesses = Vec::with_capacity(n_accesses as usize);
        let mut prev = 0i64;
        for _ in 0..n_accesses {
            let word = r.wide_varint()?;
            let store = word & 1 == 1;
            let delta = unzigzag((word >> 1) as u64);
            prev = prev.wrapping_add(delta);
            accesses.push(MemRecord {
                addr: prev as u64,
                store,
            });
        }
        // Section 4: sampling plan.
        let interval_len = r.varint()?;
        let n_intervals = r.varint()?;
        let n_reps = r.varint()?;
        if n_reps > n_intervals {
            return Err(DecodeError::Malformed(
                "more representatives than intervals",
            ));
        }
        let mut reps = Vec::with_capacity(n_reps as usize);
        let mut size_sum = 0u64;
        for _ in 0..n_reps {
            let interval = r.varint()?;
            let cluster_size = r.varint()?;
            if interval >= n_intervals {
                return Err(DecodeError::Malformed("representative index out of range"));
            }
            if reps
                .last()
                .is_some_and(|p: &Representative| p.interval >= interval)
            {
                return Err(DecodeError::Malformed("representatives not ascending"));
            }
            size_sum = size_sum
                .checked_add(cluster_size)
                .ok_or(DecodeError::Malformed("cluster sizes overflow"))?;
            reps.push(Representative {
                interval,
                cluster_size,
            });
        }
        if n_reps > 0 && size_sum != n_intervals {
            return Err(DecodeError::Malformed(
                "cluster sizes do not sum to the interval count",
            ));
        }
        // Section 5: totals.
        let total_instr = r.varint()?;
        if !r.done() {
            return Err(DecodeError::Malformed("unconsumed payload bytes"));
        }
        if interval_len == 0 && n_intervals != 0 {
            return Err(DecodeError::Malformed("zero interval length"));
        }
        Ok(TraceFile {
            program,
            branches,
            accesses,
            samples: Samples {
                interval_len,
                n_intervals,
                reps,
            },
            total_instr,
        })
    }

    /// Decodes **only the embedded program** (payload section 1),
    /// skipping the branch, memory-access, and sampling sections
    /// entirely. The header is still fully validated — including the
    /// checksum over the whole payload — so a corrupt file fails here
    /// exactly as it would in [`TraceFile::decode`].
    ///
    /// This is the cheap path for callers that need the program but not
    /// the streams (kernel-program extraction, static analysis): the
    /// access stream dominates payload size, and none of it is parsed.
    ///
    /// # Errors
    ///
    /// The same [`DecodeError`]s as [`TraceFile::decode`] for header and
    /// section-1 problems; malformations in later sections are not
    /// detected (by design — they are not read).
    pub fn decode_program(bytes: &[u8]) -> Result<Program, DecodeError> {
        let payload = TraceFile::checked_payload(bytes)?;
        TraceFile::read_program(&mut Reader::new(payload))
    }

    /// Validates the fixed header (magic, version, payload length,
    /// FNV-1a-64 checksum) and returns the payload slice.
    fn checked_payload(bytes: &[u8]) -> Result<&[u8], DecodeError> {
        if bytes.len() < HEADER_BYTES {
            return Err(if bytes.get(..4).is_some_and(|m| m != MAGIC) {
                DecodeError::BadMagic
            } else {
                DecodeError::Truncated
            });
        }
        if bytes[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let mut head = Reader::new(&bytes[8..HEADER_BYTES]);
        let payload_len = head.u64_le()? as usize;
        let expected = head.u64_le()?;
        let payload = bytes
            .get(HEADER_BYTES..HEADER_BYTES + payload_len)
            .ok_or(DecodeError::Truncated)?;
        if bytes.len() != HEADER_BYTES + payload_len {
            return Err(DecodeError::Malformed("trailing bytes after payload"));
        }
        let actual = fnv1a64(payload);
        if actual != expected {
            return Err(DecodeError::ChecksumMismatch { expected, actual });
        }
        Ok(payload)
    }

    /// Parses payload section 1 (the program) from `r`, leaving the
    /// reader positioned at section 2.
    fn read_program(r: &mut Reader<'_>) -> Result<Program, DecodeError> {
        let entry = r.varint()?;
        let n_instr = r.varint()?;
        let mut program = Program::new();
        program.set_entry(entry);
        let mut pc = 0u64;
        for _ in 0..n_instr {
            let gap = r
                .varint()?
                .checked_mul(si_isa::INSTR_BYTES)
                .and_then(|g| pc.checked_add(g))
                .ok_or(DecodeError::Malformed("instruction address overflows"))?;
            pc = gap;
            let word = r.u64_le()?;
            let instr = decode_instr(word)
                .map_err(|_| DecodeError::Malformed("undecodable instruction"))?;
            program.place(pc, instr);
            pc += si_isa::INSTR_BYTES;
        }
        let n_data = r.varint()?;
        let mut addr = 0u64;
        for _ in 0..n_data {
            addr = addr
                .checked_add(r.varint()?)
                .ok_or(DecodeError::Malformed("data address overflows"))?;
            let byte = r.u8()?;
            program.write_data(addr, &[byte]);
            addr += 1;
        }
        Ok(program)
    }

    /// FNV-1a-64 digest of the encoded file — the content digest the
    /// harness folds into engine unit specs so cached trace-replay
    /// results are invalidated when the trace bytes change.
    pub fn content_digest(bytes: &[u8]) -> u64 {
        fnv1a64(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_isa::{Assembler, R1, R2};

    fn sample_trace() -> TraceFile {
        let mut asm = Assembler::new(0x40);
        asm.mov_imm(R1, 1);
        asm.mov_imm(R2, 2);
        asm.data_u64(0x1000, 99);
        asm.halt();
        TraceFile {
            program: asm.assemble().unwrap(),
            branches: vec![true, true, false, true],
            accesses: vec![
                MemRecord {
                    addr: 0x1000,
                    store: false,
                },
                MemRecord {
                    addr: 0x0800,
                    store: true,
                },
            ],
            samples: Samples {
                interval_len: 2,
                n_intervals: 2,
                reps: vec![Representative {
                    interval: 0,
                    cluster_size: 2,
                }],
            },
            total_instr: 3,
        }
    }

    #[test]
    fn round_trips() {
        let t = sample_trace();
        let bytes = t.encode();
        assert_eq!(TraceFile::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = sample_trace().encode();
        for len in 0..bytes.len() {
            let err = TraceFile::decode(&bytes[..len]).unwrap_err();
            // Any DecodeError is acceptable; panics are not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_clean_error_or_detected() {
        let t = sample_trace();
        let bytes = t.encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                match TraceFile::decode(&corrupt) {
                    Err(e) => {
                        let _ = e.to_string();
                    }
                    Ok(decoded) => {
                        // A flip in the reserved field is the only
                        // undetectable one (it is not checksummed).
                        assert!((6..8).contains(&i), "flip at byte {i} bit {bit} undetected");
                        assert_eq!(decoded, t);
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = sample_trace().encode();
        bytes[0] = b'X';
        assert_eq!(TraceFile::decode(&bytes), Err(DecodeError::BadMagic));
        let mut bytes = sample_trace().encode();
        bytes[4] = 0xff;
        assert_eq!(
            TraceFile::decode(&bytes),
            Err(DecodeError::BadVersion(0x00ff))
        );
    }

    #[test]
    fn branch_stream_costs_about_a_bit_per_branch() {
        // 10_000 branches in a loop-like pattern (runs of 15 taken, 1
        // not-taken) must encode far below one byte per branch — the
        // format's headline claim.
        let mut t = sample_trace();
        t.branches = (0..10_000).map(|i| i % 16 != 15).collect();
        let with = t.encode().len();
        t.branches.clear();
        let without = t.encode().len();
        let bytes_for_branches = with - without;
        assert!(
            bytes_for_branches < 10_000 / 8 + 16,
            "branch section took {bytes_for_branches} bytes"
        );
    }

    #[test]
    fn varints_round_trip_at_the_extremes() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.done());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
