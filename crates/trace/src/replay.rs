//! Trace replay through the cycle-level machine: full runs and
//! weighted sampled runs.
//!
//! A `.sit` trace embeds its program, so replay is execution-driven:
//! the machine re-executes the program under a chosen speculation
//! scheme and predictor configuration, and the recorded streams serve
//! as ground truth rather than as a feed. Sampled replay fast-forwards
//! architectural state to each representative interval with the
//! interpreter, injects registers and memory into a fresh machine, and
//! simulates just that interval; the estimate is
//! `Σ cluster_size × rep_cycles` — all integer arithmetic, so sampled
//! cycle counts are exactly reproducible.
//!
//! Before each measured interval the machine is **functionally
//! warmed** from the trace itself: every data line the execution
//! touched before the interval start is touched again in last-use
//! order (so LRU retains what the real run would retain), the
//! program's code lines are fetched, and the branch predictor is
//! re-trained on the most recent resolved branches. Pipeline queues
//! still start cold, and the recorder pins the run's first
//! `warmup_intervals` as exactly-simulated singletons so cold-start
//! transients cannot be extrapolated; the residual bias is the
//! sampled-vs-full tolerance documented in `docs/TRACE_FORMAT.md`.

use std::fmt;

use si_cpu::{AgentOp, Machine, MachineConfig, SpeculationScheme};
use si_isa::{InterpError, Interpreter, Reg, NUM_REGS};

use crate::format::TraceFile;

/// Most recent resolved branches replayed into a sample interval's
/// fresh predictor. Enough to saturate both predictor organizations'
/// tables; bounding it keeps per-interval warm-up cost independent of
/// how deep into the trace the interval sits.
const TRAIN_WINDOW: usize = 65_536;

/// Result of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Measured (full) or estimated (sampled) cycles for the whole
    /// traced execution.
    pub cycles: u64,
    /// Instructions actually simulated cycle-accurately.
    pub simulated_instr: u64,
    /// Representative intervals simulated (1 for a full replay).
    pub intervals_run: u64,
}

/// Errors during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The machine exceeded its cycle budget.
    Timeout {
        /// The budget that was exhausted.
        cycle_limit: u64,
    },
    /// Fast-forwarding faulted in the interpreter (corrupt trace or
    /// program/trace mismatch).
    Interp(InterpError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Timeout { cycle_limit } => {
                write!(f, "replay exceeded {cycle_limit} cycles")
            }
            ReplayError::Interp(e) => write!(f, "fast-forward faulted: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays the embedded program end-to-end on one core.
pub fn replay_full(
    trace: &TraceFile,
    config: &MachineConfig,
    scheme: Box<dyn SpeculationScheme>,
    max_cycles: u64,
) -> Result<ReplayOutcome, ReplayError> {
    let mut m = Machine::new(config.clone());
    m.load_program_with_scheme(0, &trace.program, scheme);
    let cycles = m
        .run_core_to_halt(0, max_cycles)
        .map_err(|_| ReplayError::Timeout {
            cycle_limit: max_cycles,
        })?;
    Ok(ReplayOutcome {
        cycles,
        simulated_instr: m.core(0).stats().retired,
        intervals_run: 1,
    })
}

/// Replays only the trace's representative intervals and extrapolates
/// by cluster size.
///
/// `scheme_factory` is called once per interval — each interval gets a
/// fresh machine and a fresh scheme instance. Intervals are processed
/// in ascending order so the interpreter fast-forwards in one pass.
/// Falls back to a full replay when the trace carries no sampling plan.
///
/// `max_cycles` bounds each *interval's* simulation, not the total.
pub fn replay_sampled(
    trace: &TraceFile,
    config: &MachineConfig,
    scheme_factory: &dyn Fn() -> Box<dyn SpeculationScheme>,
    max_cycles: u64,
) -> Result<ReplayOutcome, ReplayError> {
    let samples = &trace.samples;
    if samples.reps.is_empty() {
        return replay_full(trace, config, scheme_factory(), max_cycles);
    }
    let mut interp = Interpreter::new(&trace.program);
    let mut est_cycles = 0u64;
    let mut simulated_instr = 0u64;
    let mut intervals_run = 0u64;
    // Data lines touched and branches resolved during fast-forward, in
    // program order — the warm-up feed for each interval's fresh machine.
    let mut touched_lines: Vec<u64> = Vec::new();
    let mut branch_hist: Vec<(u64, bool, u64)> = Vec::new();
    for rep in &samples.reps {
        let start_instr = rep.interval * samples.interval_len;
        while interp.retired() < start_instr && !interp.halted() {
            let pc = interp.pc();
            let (_, ev) = interp.step_event().map_err(ReplayError::Interp)?;
            if let Some(m) = ev.mem {
                touched_lines.push(m.addr & !63);
            }
            if let Some(taken) = ev.branch_taken {
                branch_hist.push((pc, taken, interp.pc()));
            }
        }
        if interp.halted() && interp.retired() < start_instr {
            // Sampling plan points past the end of execution; the
            // decoder bounds rep indices, so this only happens for a
            // trace whose recorded totals are internally inconsistent.
            break;
        }
        let remaining = trace.total_instr.saturating_sub(start_instr);
        let target = samples.interval_len.min(remaining);
        if target == 0 {
            continue;
        }

        // Fresh machine with architectural state injected at the
        // interval boundary; microarchitectural state starts cold.
        let mut sub = trace.program.clone();
        sub.set_entry(interp.pc());
        let mut m = Machine::new(config.clone());
        m.load_program_with_scheme(0, &sub, scheme_factory());
        for i in 1..NUM_REGS {
            let r = Reg::new(i as u8).expect("register index in range");
            m.core_mut(0).set_reg(r, interp.reg(r));
        }
        for (addr, byte) in interp.mem_snapshot() {
            m.memory_mut().write_u8(addr, byte);
        }
        // Functional warm-up: replay the pre-interval working set into
        // the cache hierarchy, oldest-first so LRU leaves the machine
        // holding what the full run would hold, then touch the code
        // lines (the frontend of the real run has them resident).
        for line in dedup_keep_last(&touched_lines) {
            m.run_op(AgentOp::Access {
                core: 0,
                addr: line,
            });
        }
        let mut code_lines: Vec<u64> = trace.program.iter().map(|(pc, _)| pc & !63).collect();
        code_lines.dedup();
        for line in code_lines {
            m.run_op(AgentOp::FetchAccess {
                core: 0,
                addr: line,
            });
        }
        // Predictor warm-up: re-train on the most recent resolved
        // branches (bounded so huge traces stay cheap to sample).
        let skip = branch_hist.len().saturating_sub(TRAIN_WINDOW);
        for &(pc, taken, target) in &branch_hist[skip..] {
            m.core_mut(0).train_branch(pc, taken, target);
        }
        while !m.core(0).halted() && m.core(0).stats().retired < target {
            if m.cycle() >= max_cycles {
                return Err(ReplayError::Timeout {
                    cycle_limit: max_cycles,
                });
            }
            m.advance(max_cycles);
        }
        let stats = m.core(0).stats();
        est_cycles += stats.cycles * rep.cluster_size;
        simulated_instr += stats.retired;
        intervals_run += 1;
    }
    Ok(ReplayOutcome {
        cycles: est_cycles,
        simulated_instr,
        intervals_run,
    })
}

/// Deduplicates line addresses keeping each line's **last** occurrence,
/// preserving relative order — so warming oldest-first ends with the
/// most recently used lines, matching what LRU would retain.
fn dedup_keep_last(lines: &[u64]) -> Vec<u64> {
    let mut last_pos = std::collections::BTreeMap::new();
    for (i, &l) in lines.iter().enumerate() {
        last_pos.insert(l, i);
    }
    let mut ordered: Vec<(usize, u64)> = last_pos.into_iter().map(|(l, i)| (i, l)).collect();
    ordered.sort_unstable();
    ordered.into_iter().map(|(_, l)| l).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record, RecordConfig};
    use si_cpu::Unprotected;
    use si_isa::{Assembler, R1, R2, R3, R4};

    fn workish_program(iters: i64) -> si_isa::Program {
        let mut asm = Assembler::new(0);
        asm.mov_imm(R1, 0);
        asm.mov_imm(R2, iters);
        asm.mov_imm(R4, 0);
        let top = asm.here("top");
        asm.add_imm(R1, R1, 1);
        asm.load(R3, R1, 0x1000);
        asm.add(R4, R4, R3);
        asm.store(R4, R1, 0x4000);
        asm.branch_ltu(R1, R2, top);
        asm.halt();
        let mut p = asm.assemble().unwrap();
        for i in 0..64u64 {
            p.write_data(0x1000 + i, &[(i * 7 + 3) as u8]);
        }
        p
    }

    fn unprotected() -> Box<dyn SpeculationScheme> {
        Box::new(Unprotected)
    }

    #[test]
    fn full_replay_matches_direct_machine_run() {
        let p = workish_program(24);
        let t = record(
            &p,
            &RecordConfig {
                interval_len: 16,
                max_clusters: 4,
                warmup_intervals: 0,
                max_steps: 100_000,
            },
        )
        .unwrap();
        let cfg = MachineConfig::default();
        let out = replay_full(&t, &cfg, unprotected(), 1_000_000).unwrap();
        assert_eq!(out.simulated_instr, t.total_instr);
        assert_eq!(out.intervals_run, 1);
        let again = replay_full(&t, &cfg, unprotected(), 1_000_000).unwrap();
        assert_eq!(out, again, "full replay is deterministic");
    }

    #[test]
    fn sampled_replay_is_deterministic_and_close_to_full() {
        // Intervals must be long enough to amortize per-interval
        // cold-start (cold caches, cold predictor, pipeline fill) —
        // docs/TRACE_FORMAT.md documents the ≥1024-instruction
        // guidance this test exercises.
        let p = workish_program(4_000);
        let t = record(
            &p,
            &RecordConfig {
                interval_len: 2_048,
                max_clusters: 4,
                warmup_intervals: 0,
                max_steps: 100_000,
            },
        )
        .unwrap();
        let cfg = MachineConfig::default();
        let full = replay_full(&t, &cfg, unprotected(), 10_000_000).unwrap();
        let sampled = replay_sampled(&t, &cfg, &unprotected, 10_000_000).unwrap();
        assert_eq!(
            sampled,
            replay_sampled(&t, &cfg, &unprotected, 10_000_000).unwrap(),
            "sampled replay is deterministic"
        );
        assert!(sampled.simulated_instr < full.simulated_instr);
        // The homogeneous loop should extrapolate well within the
        // documented 10% tolerance.
        let lo = full.cycles * 90 / 100;
        let hi = full.cycles * 110 / 100;
        assert!(
            (lo..=hi).contains(&sampled.cycles),
            "sampled {} vs full {} outside 10%",
            sampled.cycles,
            full.cycles
        );
    }

    #[test]
    fn empty_sampling_plan_falls_back_to_full() {
        let p = workish_program(8);
        let mut t = record(&p, &RecordConfig::default()).unwrap();
        t.samples.reps.clear();
        let cfg = MachineConfig::default();
        let out = replay_sampled(&t, &cfg, &unprotected, 1_000_000).unwrap();
        assert_eq!(out.intervals_run, 1);
        assert_eq!(out.simulated_instr, t.total_instr);
    }

    #[test]
    fn timeout_is_reported_not_hung() {
        let p = workish_program(500);
        let t = record(
            &p,
            &RecordConfig {
                interval_len: 64,
                max_clusters: 2,
                warmup_intervals: 0,
                max_steps: 100_000,
            },
        )
        .unwrap();
        let cfg = MachineConfig::default();
        let err = replay_sampled(&t, &cfg, &unprotected, 10).unwrap_err();
        assert_eq!(err, ReplayError::Timeout { cycle_limit: 10 });
    }
}
