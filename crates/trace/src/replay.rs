//! Trace replay through the cycle-level machine: full runs and
//! weighted sampled runs.
//!
//! A `.sit` trace embeds its program, so replay is execution-driven:
//! the machine re-executes the program under a chosen speculation
//! scheme and predictor configuration, and the recorded streams serve
//! as ground truth rather than as a feed. Sampled replay fast-forwards
//! architectural state to each representative interval with the
//! interpreter, injects registers and memory into a fresh machine, and
//! simulates just that interval; the estimate is
//! `Σ cluster_size × rep_cycles` — all integer arithmetic, so sampled
//! cycle counts are exactly reproducible.
//!
//! Before each measured interval the machine is **functionally
//! warmed** from the trace itself: every data line the execution
//! touched before the interval start is touched again in last-use
//! order (so LRU retains what the real run would retain), the
//! program's code lines are fetched, and the branch predictor is
//! re-trained on the most recent resolved branches. Pipeline queues
//! still start cold, and the recorder pins the run's first
//! `warmup_intervals` as exactly-simulated singletons so cold-start
//! transients cannot be extrapolated; the residual bias is the
//! sampled-vs-full tolerance documented in `docs/TRACE_FORMAT.md`.

use std::fmt;

use si_cpu::{Machine, MachineConfig, SpeculationScheme};
use si_isa::InterpError;

use crate::format::TraceFile;
use crate::plan::{replay_planned, ReplayPlan};

/// Result of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Measured (full) or estimated (sampled) cycles for the whole
    /// traced execution.
    pub cycles: u64,
    /// Instructions actually simulated cycle-accurately.
    pub simulated_instr: u64,
    /// Representative intervals simulated (1 for a full replay).
    pub intervals_run: u64,
}

/// Errors during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The machine exceeded its cycle budget.
    Timeout {
        /// The budget that was exhausted.
        cycle_limit: u64,
    },
    /// Fast-forwarding faulted in the interpreter (corrupt trace or
    /// program/trace mismatch).
    Interp(InterpError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Timeout { cycle_limit } => {
                write!(f, "replay exceeded {cycle_limit} cycles")
            }
            ReplayError::Interp(e) => write!(f, "fast-forward faulted: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays the embedded program end-to-end on one core.
pub fn replay_full(
    trace: &TraceFile,
    config: &MachineConfig,
    scheme: Box<dyn SpeculationScheme>,
    max_cycles: u64,
) -> Result<ReplayOutcome, ReplayError> {
    let mut m = Machine::new(config.clone());
    m.load_program_with_scheme(0, &trace.program, scheme);
    let cycles = m
        .run_core_to_halt(0, max_cycles)
        .map_err(|_| ReplayError::Timeout {
            cycle_limit: max_cycles,
        })?;
    Ok(ReplayOutcome {
        cycles,
        simulated_instr: m.core(0).stats().retired,
        intervals_run: 1,
    })
}

/// Replays only the trace's representative intervals and extrapolates
/// by cluster size.
///
/// `scheme_factory` is called once per interval — each interval gets a
/// fresh machine and a fresh scheme instance. Internally this is
/// [`ReplayPlan::build`] followed by [`replay_planned`]; callers that
/// replay the same trace repeatedly should build (or cache) the plan
/// once and call [`replay_planned`] directly, skipping the interpreter
/// fast-forward on every call after the first.
/// Falls back to a full replay when the trace carries no sampling plan.
///
/// `max_cycles` bounds each *interval's* simulation, not the total.
pub fn replay_sampled(
    trace: &TraceFile,
    config: &MachineConfig,
    scheme_factory: &dyn Fn() -> Box<dyn SpeculationScheme>,
    max_cycles: u64,
) -> Result<ReplayOutcome, ReplayError> {
    if trace.samples.reps.is_empty() {
        return replay_full(trace, config, scheme_factory(), max_cycles);
    }
    let plan = ReplayPlan::build(trace)?;
    replay_planned(&plan, config, scheme_factory, max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record, RecordConfig};
    use si_cpu::Unprotected;
    use si_isa::{Assembler, R1, R2, R3, R4};

    fn workish_program(iters: i64) -> si_isa::Program {
        let mut asm = Assembler::new(0);
        asm.mov_imm(R1, 0);
        asm.mov_imm(R2, iters);
        asm.mov_imm(R4, 0);
        let top = asm.here("top");
        asm.add_imm(R1, R1, 1);
        asm.load(R3, R1, 0x1000);
        asm.add(R4, R4, R3);
        asm.store(R4, R1, 0x4000);
        asm.branch_ltu(R1, R2, top);
        asm.halt();
        let mut p = asm.assemble().unwrap();
        for i in 0..64u64 {
            p.write_data(0x1000 + i, &[(i * 7 + 3) as u8]);
        }
        p
    }

    fn unprotected() -> Box<dyn SpeculationScheme> {
        Box::new(Unprotected)
    }

    #[test]
    fn full_replay_matches_direct_machine_run() {
        let p = workish_program(24);
        let t = record(
            &p,
            &RecordConfig {
                interval_len: 16,
                max_clusters: 4,
                warmup_intervals: 0,
                max_steps: 100_000,
            },
        )
        .unwrap();
        let cfg = MachineConfig::default();
        let out = replay_full(&t, &cfg, unprotected(), 1_000_000).unwrap();
        assert_eq!(out.simulated_instr, t.total_instr);
        assert_eq!(out.intervals_run, 1);
        let again = replay_full(&t, &cfg, unprotected(), 1_000_000).unwrap();
        assert_eq!(out, again, "full replay is deterministic");
    }

    #[test]
    fn sampled_replay_is_deterministic_and_close_to_full() {
        // Intervals must be long enough to amortize per-interval
        // cold-start (cold caches, cold predictor, pipeline fill) —
        // docs/TRACE_FORMAT.md documents the ≥1024-instruction
        // guidance this test exercises.
        let p = workish_program(4_000);
        let t = record(
            &p,
            &RecordConfig {
                interval_len: 2_048,
                max_clusters: 4,
                warmup_intervals: 0,
                max_steps: 100_000,
            },
        )
        .unwrap();
        let cfg = MachineConfig::default();
        let full = replay_full(&t, &cfg, unprotected(), 10_000_000).unwrap();
        let sampled = replay_sampled(&t, &cfg, &unprotected, 10_000_000).unwrap();
        assert_eq!(
            sampled,
            replay_sampled(&t, &cfg, &unprotected, 10_000_000).unwrap(),
            "sampled replay is deterministic"
        );
        assert!(sampled.simulated_instr < full.simulated_instr);
        // The homogeneous loop should extrapolate well within the
        // documented 10% tolerance.
        let lo = full.cycles * 90 / 100;
        let hi = full.cycles * 110 / 100;
        assert!(
            (lo..=hi).contains(&sampled.cycles),
            "sampled {} vs full {} outside 10%",
            sampled.cycles,
            full.cycles
        );
    }

    #[test]
    fn empty_sampling_plan_falls_back_to_full() {
        let p = workish_program(8);
        let mut t = record(&p, &RecordConfig::default()).unwrap();
        t.samples.reps.clear();
        let cfg = MachineConfig::default();
        let out = replay_sampled(&t, &cfg, &unprotected, 1_000_000).unwrap();
        assert_eq!(out.intervals_run, 1);
        assert_eq!(out.simulated_instr, t.total_instr);
    }

    #[test]
    fn timeout_is_reported_not_hung() {
        let p = workish_program(500);
        let t = record(
            &p,
            &RecordConfig {
                interval_len: 64,
                max_clusters: 2,
                warmup_intervals: 0,
                max_steps: 100_000,
            },
        )
        .unwrap();
        let cfg = MachineConfig::default();
        let err = replay_sampled(&t, &cfg, &unprotected, 10).unwrap_err();
        assert_eq!(err, ReplayError::Timeout { cycle_limit: 10 });
    }
}
