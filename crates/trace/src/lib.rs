//! Compact execution traces for the speculative-interference simulator:
//! recording, SimPoint-style sampling, and machine replay.
//!
//! A `.sit` trace is a self-contained, versioned, checksummed binary
//! file ([`TraceFile`], wire format specified byte-for-byte in
//! `docs/TRACE_FORMAT.md`) holding a program plus its architectural
//! branch-outcome stream (~1 bit per branch via taken-run-length
//! encoding), memory-access stream (zigzag address deltas), and a
//! sampling plan chosen by a deterministic SimPoint-style clusterer
//! ([`sampler`]).
//!
//! The pipeline is:
//!
//! 1. [`record`](record()) — run a program through the architectural
//!    interpreter, capturing streams and per-interval basic-block
//!    vectors, then cluster intervals and pick representatives;
//! 2. [`TraceFile::encode`] / [`TraceFile::decode`] — serialize;
//!    corrupt input decodes to a [`DecodeError`], never a panic;
//! 3. [`replay_full`] / [`replay_sampled`] — re-execute on the
//!    cycle-level machine under any speculation scheme and predictor;
//!    sampled replay simulates only representative intervals and
//!    extrapolates by cluster size, in pure integer arithmetic.
//!
//! Sampled replay is internally staged: a scheme-independent
//! [`ReplayPlan`] (one interpreter fast-forward per trace) feeds
//! [`replay_planned`] (per-scheme machine warm-up and simulation).
//! Hot paths build the plan once per trace and share it across schemes,
//! predictors, and trials; `replay_sampled` is the convenience wrapper
//! that does both stages in one call.
//!
//! Everything is deterministic: the same program yields bit-identical
//! trace bytes, and replay (full or sampled) yields identical cycle
//! counts on every run and thread count.
//!
//! # Example
//!
//! ```
//! use si_trace::{example_trace, replay_sampled, TraceFile};
//! use si_cpu::{MachineConfig, Unprotected};
//!
//! let trace = example_trace();
//! let bytes = trace.encode();
//! assert_eq!(TraceFile::decode(&bytes).unwrap(), trace);
//!
//! let cfg = MachineConfig::default();
//! let out = replay_sampled(&trace, &cfg, &|| Box::new(Unprotected), 100_000).unwrap();
//! assert!(out.cycles > 0);
//! ```

mod example;
mod format;
mod plan;
mod record;
mod replay;
pub mod sampler;

pub use example::{example_program, example_trace};
pub use format::{
    fnv1a64, DecodeError, MemRecord, Representative, Samples, TraceFile, HEADER_BYTES, MAGIC,
    VERSION,
};
pub use plan::{replay_planned, PlanInterval, ReplayPlan};
pub use record::{record, RecordConfig, RecordError};
pub use replay::{replay_full, replay_sampled, ReplayError, ReplayOutcome};
