//! The reorder buffer and register-alias table.

use std::collections::VecDeque;

use si_isa::{Instruction, Opcode, NUM_REGS};

use crate::scheme::SafeAction;

/// A rename tag: either a committed value or a reference to the in-flight
/// producer's sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegTag {
    /// The architectural value is known.
    Value(u64),
    /// The youngest writer is the in-flight instruction `seq`.
    Rob(u64),
}

/// The register-alias table: one [`RegTag`] per architectural register.
pub type Rat = Vec<RegTag>;

/// Creates a RAT with every register holding value 0.
pub fn fresh_rat() -> Rat {
    vec![RegTag::Value(0); NUM_REGS]
}

/// Execution status of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// In the reservation station, waiting to issue.
    Waiting,
    /// Issued; executing or waiting on memory.
    Issued,
    /// Result (if any) produced; retirable once it reaches the head.
    Done,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global, monotonically increasing sequence number (the instruction's
    /// age — the scheduler's priority key).
    pub seq: u64,
    /// Fetch address.
    pub pc: u64,
    /// The instruction.
    pub instr: Instruction,
    /// Execution status.
    pub state: EntryState,
    /// Destination value, once produced.
    pub result: Option<u64>,
    /// Effective address (memory ops), once generated.
    pub addr: Option<u64>,
    /// Value to store (stores), captured at issue.
    pub store_value: Option<u64>,
    /// Predicted next PC (branches; fallthrough when predicted not-taken).
    pub predicted_next: u64,
    /// Whether the branch has resolved.
    pub resolved: bool,
    /// Actual next PC after resolution.
    pub actual_next: u64,
    /// Whether the branch resolved against its prediction.
    pub mispredicted: bool,
    /// Whether the squash for this mispredict was already performed.
    pub squash_handled: bool,
    /// RAT snapshot taken at dispatch (branches only).
    pub rat_checkpoint: Option<Rat>,
    /// Deferred cache-state action for an invisibly executed load.
    pub pending_safe_action: Option<SafeAction>,
    /// Load currently parked by a `Delay` plan.
    pub delayed: bool,
    /// LLC line this (speculative) load filled visibly — CleanupSpec's
    /// undo record.
    pub spec_fill_line: Option<u64>,
    /// Cycle dispatched (diagnostics).
    pub dispatched_at: u64,
    /// Cycle issued (diagnostics).
    pub issued_at: Option<u64>,
    /// Cycle completed (diagnostics).
    pub completed_at: Option<u64>,
}

impl RobEntry {
    /// Creates a freshly dispatched entry.
    pub fn new(seq: u64, pc: u64, instr: Instruction, cycle: u64) -> RobEntry {
        RobEntry {
            seq,
            pc,
            instr,
            state: EntryState::Waiting,
            result: None,
            addr: None,
            store_value: None,
            predicted_next: 0,
            resolved: false,
            actual_next: 0,
            mispredicted: false,
            squash_handled: false,
            rat_checkpoint: None,
            pending_safe_action: None,
            delayed: false,
            spec_fill_line: None,
            dispatched_at: cycle,
            issued_at: None,
            completed_at: None,
        }
    }

    /// Whether this is a conditional branch.
    pub fn is_branch(&self) -> bool {
        self.instr.opcode == Opcode::Branch
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        self.instr.opcode == Opcode::Load
    }

    /// Whether this is a store or flush (address-producing, retire-acting).
    pub fn is_store_like(&self) -> bool {
        matches!(self.instr.opcode, Opcode::Store | Opcode::Flush)
    }
}

/// The reorder buffer: a bounded, age-ordered queue of in-flight
/// instructions.
#[derive(Debug, Clone, Default)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB with the given capacity.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether dispatch must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a dispatched entry.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or `entry.seq` is not monotonically
    /// increasing.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "ROB overflow");
        if let Some(back) = self.entries.back() {
            assert!(back.seq < entry.seq, "ROB sequence must increase");
        }
        self.entries.push_back(entry);
    }

    /// The oldest entry, if any.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Looks up an entry by sequence number.
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        self.position(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        self.position(seq).map(move |i| &mut self.entries[i])
    }

    /// Position of `seq` from the head (0 = oldest).
    pub fn position(&self, seq: u64) -> Option<usize> {
        self.entries.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// Iterates entries oldest-to-youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Mutable iteration oldest-to-youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Removes every entry younger than `branch_seq` and returns them
    /// (oldest first) — the squash path.
    pub fn squash_after(&mut self, branch_seq: u64) -> Vec<RobEntry> {
        let keep = self
            .entries
            .iter()
            .take_while(|e| e.seq <= branch_seq)
            .count();
        self.entries.split_off(keep).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_isa::{Instruction, R1, R2, R3};

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(seq, seq * 8, Instruction::add(R3, R1, R2), 0)
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.pop_head().unwrap().seq, 0);
        assert_eq!(rob.head().unwrap().seq, 1);
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "sequence must increase")]
    fn non_monotonic_seq_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(3));
    }

    #[test]
    fn lookup_by_seq_after_retirement() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head();
        assert!(rob.get(1).is_none());
        assert_eq!(rob.get(3).unwrap().seq, 3);
        assert_eq!(rob.position(2), Some(0));
    }

    #[test]
    fn squash_removes_strictly_younger() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_after(2);
        assert_eq!(squashed.len(), 3);
        assert_eq!(squashed[0].seq, 3);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.iter().last().unwrap().seq, 2);
    }

    #[test]
    fn squash_with_no_younger_is_empty() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        assert!(rob.squash_after(0).is_empty());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn entry_classification() {
        let load = RobEntry::new(0, 0, Instruction::load(R1, R2, 0), 0);
        assert!(load.is_load() && !load.is_branch() && !load.is_store_like());
        let st = RobEntry::new(1, 8, Instruction::store(R1, R2, 0), 0);
        assert!(st.is_store_like());
        let fl = RobEntry::new(2, 16, Instruction::flush(R2, 0), 0);
        assert!(fl.is_store_like());
    }
}
