//! Pipeline event tracing, used to regenerate the paper's timeline figures
//! (Figures 3, 4, 5, 10).

use si_cache::HitLevel;

/// One pipeline event with its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Instruction fetched from `pc`.
    Fetch { pc: u64 },
    /// Fetch stalled this cycle (`reason` explains why).
    FetchStall { reason: StallReason },
    /// Instruction `seq` at `pc` entered the ROB.
    Dispatch { seq: u64, pc: u64 },
    /// Instruction `seq` issued to execution port `port`.
    Issue { seq: u64, port: usize },
    /// Load `seq` accessed the data cache (level it hit, visibly or not).
    LoadAccess {
        /// Load's sequence number.
        seq: u64,
        /// Accessed address.
        addr: u64,
        /// Level that serviced it.
        level: HitLevel,
        /// Whether the access was allowed to change cache state.
        visible: bool,
    },
    /// Load `seq` was delayed by the active speculation scheme.
    LoadDelayed { seq: u64, addr: u64 },
    /// Load `seq` stalled for want of an MSHR.
    MshrStall { seq: u64, addr: u64 },
    /// Instruction `seq` wrote back its result.
    Writeback { seq: u64 },
    /// A mispredicted branch squashed `squashed` younger instructions.
    Squash { branch_seq: u64, squashed: usize },
    /// Instruction `seq` retired.
    Retire { seq: u64, pc: u64 },
}

/// Why fetch made no progress in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// Waiting on an instruction-cache fill.
    ICacheMiss,
    /// The decode queue is full (back-pressure from a full RS/ROB — the
    /// `G^I_RS` throttling path).
    QueueFull,
    /// Fetch ran off the end of placed code or past a `Halt`.
    NoInstruction,
}

/// A bounded trace buffer; disabled by default so experiment sweeps pay
/// nothing for it.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<(u64, TraceEvent)>,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event at `cycle` (no-op when disabled).
    pub fn record(&mut self, cycle: u64, event: TraceEvent) {
        if self.enabled {
            self.events.push((cycle, event));
        }
    }

    /// All recorded `(cycle, event)` pairs, in record order.
    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    /// Clears recorded events (keeps the enable flag).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(1, TraceEvent::Fetch { pc: 0 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(1, TraceEvent::Fetch { pc: 0 });
        t.record(2, TraceEvent::Dispatch { seq: 0, pc: 0 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].0, 1);
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.enabled());
    }
}
