//! Named machine-configuration presets — the cache-geometry, noise, and
//! predictor axes of the harness's scenario sweeps (`sia sweep`).
//!
//! Each preset enum is **enumerable** (`all()`, in presentation order)
//! and **parsable** (`slug()` / `parse()` round-trip), so a sweep grid
//! can name its axis values declaratively and record them in result
//! JSON. [`MachineConfig::from_presets`] assembles a validated machine
//! from one value per axis; the default machine is
//! `from_presets(KabyLake, Quiet, P1k)`.

use si_cache::{CacheConfig, HierarchyConfig, PolicyKind};

use crate::config::{MachineConfig, NoiseConfig};
use crate::predictor::PredictorKind;

/// Cache-geometry presets: variations of the Kaby-Lake-like hierarchy
/// that stress different points of the attack surface (LLC capacity,
/// LLC associativity, private-L2 reach). All keep the paper's
/// `QLRU_H11_M1_R0_U0` LLC policy and two cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GeometryPreset {
    /// The default experimental machine (32 KB 8-way L1s, 128 KB 8-way
    /// L2, 1 MB 16-way LLC) — `HierarchyConfig::kaby_lake_like(2)`.
    KabyLake,
    /// A capacity-starved LLC (256 KB, 16-way): eviction pressure rises,
    /// so occupancy-style channels and back-invalidations become louder.
    SmallLlc,
    /// A low-associativity LLC (512 KB, 4-way over 2048 sets): eviction
    /// sets are cheap to build, conflict-based receivers get easier.
    LowAssocLlc,
    /// A doubled private L2 (256 KB, 8-way): more speculative state is
    /// absorbed before it reaches the shared level.
    BigL2,
}

impl GeometryPreset {
    /// All presets, in presentation order.
    pub fn all() -> Vec<GeometryPreset> {
        use GeometryPreset::*;
        vec![KabyLake, SmallLlc, LowAssocLlc, BigL2]
    }

    /// Canonical CLI/JSON slug.
    pub fn slug(self) -> &'static str {
        match self {
            GeometryPreset::KabyLake => "kaby-lake",
            GeometryPreset::SmallLlc => "small-llc",
            GeometryPreset::LowAssocLlc => "low-assoc",
            GeometryPreset::BigL2 => "big-l2",
        }
    }

    /// Parses a slug (case-insensitive), as printed by [`slug`](Self::slug).
    pub fn parse(text: &str) -> Option<GeometryPreset> {
        let needle = text.to_ascii_lowercase();
        GeometryPreset::all()
            .into_iter()
            .find(|g| g.slug() == needle)
    }

    /// Builds the hierarchy this preset names.
    pub fn hierarchy(self) -> HierarchyConfig {
        let mut h = HierarchyConfig::kaby_lake_like(2);
        match self {
            GeometryPreset::KabyLake => {}
            GeometryPreset::SmallLlc => {
                h.llc = CacheConfig::new(256, 16, PolicyKind::qlru_h11_m1_r0_u0());
            }
            GeometryPreset::LowAssocLlc => {
                h.llc = CacheConfig::new(2048, 4, PolicyKind::qlru_h11_m1_r0_u0());
            }
            GeometryPreset::BigL2 => {
                h.l2 = CacheConfig::new(512, 8, PolicyKind::Lru);
            }
        }
        h
    }
}

/// Noise presets: the seeded timing-noise environments the covert-channel
/// figures run under (see `NoiseConfig`; the per-trial RNG seed is set by
/// the harness, not the preset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NoisePreset {
    /// No injected noise (deterministic timing).
    Quiet,
    /// Light DRAM jitter (uniform 0..=12 extra cycles per DRAM access) —
    /// the Figure 7 measurement environment.
    Jitter,
    /// Hostile co-tenant: DRAM jitter 40 plus a background agent walking
    /// conflict bursts through random LLC sets every 16 cycles — the
    /// Figure 11 environment.
    Bursty,
}

impl NoisePreset {
    /// All presets, in presentation order.
    pub fn all() -> Vec<NoisePreset> {
        use NoisePreset::*;
        vec![Quiet, Jitter, Bursty]
    }

    /// Canonical CLI/JSON slug.
    pub fn slug(self) -> &'static str {
        match self {
            NoisePreset::Quiet => "quiet",
            NoisePreset::Jitter => "jitter",
            NoisePreset::Bursty => "bursty",
        }
    }

    /// Parses a slug (case-insensitive), as printed by [`slug`](Self::slug).
    pub fn parse(text: &str) -> Option<NoisePreset> {
        let needle = text.to_ascii_lowercase();
        NoisePreset::all().into_iter().find(|n| n.slug() == needle)
    }

    /// Builds the noise configuration this preset names (default seed;
    /// callers that need per-trial noise derive their own seed).
    pub fn noise(self) -> NoiseConfig {
        let mut n = NoiseConfig::default();
        match self {
            NoisePreset::Quiet => {}
            NoisePreset::Jitter => n.dram_jitter = 12,
            NoisePreset::Bursty => {
                n.dram_jitter = 40;
                n.background_period = 16;
                n.burst_sets = true;
            }
        }
        n
    }
}

/// Branch-predictor presets: three bimodal table sizes plus the TAGE
/// organization (see [`crate::TagePredictor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PredictorPreset {
    /// The default 1024-entry bimodal table.
    P1k,
    /// A tiny 64-entry bimodal table: heavy aliasing, frequent
    /// mispredicts — more squashes, more speculative windows.
    P64,
    /// A generous 8192-entry bimodal table: near-alias-free prediction.
    P8k,
    /// A TAGE predictor (geometric history lengths, tagged banks) over a
    /// 1024-entry base table — the realistic frontend for trace replay.
    Tage,
}

impl PredictorPreset {
    /// All presets, in presentation order.
    pub fn all() -> Vec<PredictorPreset> {
        use PredictorPreset::*;
        vec![P1k, P64, P8k, Tage]
    }

    /// Canonical CLI/JSON slug.
    pub fn slug(self) -> &'static str {
        match self {
            PredictorPreset::P1k => "p1k",
            PredictorPreset::P64 => "p64",
            PredictorPreset::P8k => "p8k",
            PredictorPreset::Tage => "tage",
        }
    }

    /// Parses a slug (case-insensitive), as printed by [`slug`](Self::slug).
    pub fn parse(text: &str) -> Option<PredictorPreset> {
        let needle = text.to_ascii_lowercase();
        PredictorPreset::all()
            .into_iter()
            .find(|p| p.slug() == needle)
    }

    /// The (base) counter-table size this preset names.
    pub fn entries(self) -> usize {
        match self {
            PredictorPreset::P1k | PredictorPreset::Tage => 1024,
            PredictorPreset::P64 => 64,
            PredictorPreset::P8k => 8192,
        }
    }

    /// The predictor organization this preset names.
    pub fn kind(self) -> PredictorKind {
        match self {
            PredictorPreset::Tage => PredictorKind::Tage,
            _ => PredictorKind::Bimodal,
        }
    }
}

impl MachineConfig {
    /// A stable textual fingerprint of the **entire** machine
    /// configuration, digested into every execution-engine unit spec
    /// (`si-engine`'s `UnitSpec::config_digest`).
    ///
    /// It is the `Debug` rendering on purpose: adding, removing, or
    /// re-meaning any config field changes the fingerprint of every
    /// machine built from it, which orphans stale cache entries
    /// *automatically* — no one has to remember the engine exists when
    /// they grow `MachineConfig`. Callers fingerprint the config
    /// **before** assigning per-unit noise seeds (the seed is part of
    /// the unit spec already).
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }

    /// Assembles a machine from one value per preset axis. The result
    /// always validates; `from_presets(KabyLake, Quiet, P1k)` is the
    /// default machine.
    pub fn from_presets(
        geometry: GeometryPreset,
        noise: NoisePreset,
        predictor: PredictorPreset,
    ) -> MachineConfig {
        let mut cfg = MachineConfig {
            hierarchy: geometry.hierarchy(),
            noise: noise.noise(),
            ..MachineConfig::default()
        };
        cfg.core.predictor_entries = predictor.entries();
        cfg.core.predictor_kind = predictor.kind();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_combination_validates() {
        for g in GeometryPreset::all() {
            for n in NoisePreset::all() {
                for p in PredictorPreset::all() {
                    MachineConfig::from_presets(g, n, p)
                        .validate()
                        .unwrap_or_else(|e| panic!("{g:?}/{n:?}/{p:?}: {e}"));
                }
            }
        }
    }

    #[test]
    fn slugs_round_trip() {
        for g in GeometryPreset::all() {
            assert_eq!(GeometryPreset::parse(g.slug()), Some(g), "{g:?}");
        }
        for n in NoisePreset::all() {
            assert_eq!(NoisePreset::parse(n.slug()), Some(n), "{n:?}");
        }
        for p in PredictorPreset::all() {
            assert_eq!(PredictorPreset::parse(p.slug()), Some(p), "{p:?}");
        }
        assert_eq!(
            GeometryPreset::parse("KABY-LAKE"),
            Some(GeometryPreset::KabyLake)
        );
        assert_eq!(NoisePreset::parse("nope"), None);
    }

    #[test]
    fn fingerprints_track_config_differences() {
        let base = MachineConfig::default();
        assert_eq!(base.fingerprint(), MachineConfig::default().fingerprint());
        for g in [GeometryPreset::SmallLlc, GeometryPreset::BigL2] {
            let other = MachineConfig::from_presets(g, NoisePreset::Quiet, PredictorPreset::P1k);
            assert_ne!(base.fingerprint(), other.fingerprint(), "{g:?}");
        }
        let mut tweaked = MachineConfig::default();
        tweaked.core.predictor_entries *= 2;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn default_presets_reproduce_the_default_machine() {
        let preset = MachineConfig::from_presets(
            GeometryPreset::KabyLake,
            NoisePreset::Quiet,
            PredictorPreset::P1k,
        );
        assert_eq!(preset, MachineConfig::default());
    }

    #[test]
    fn presets_differ_from_the_default_machine() {
        let base = MachineConfig::default();
        for g in [
            GeometryPreset::SmallLlc,
            GeometryPreset::LowAssocLlc,
            GeometryPreset::BigL2,
        ] {
            assert_ne!(g.hierarchy(), base.hierarchy, "{g:?}");
        }
        for n in [NoisePreset::Jitter, NoisePreset::Bursty] {
            assert_ne!(n.noise(), base.noise, "{n:?}");
        }
        assert_ne!(PredictorPreset::P64.entries(), base.core.predictor_entries);
    }
}
