//! The multi-core machine: cores in lockstep over a shared hierarchy, plus
//! the attacker-side memory agent and noise injection.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use si_cache::{AccessClass, AccessResult, Hierarchy, LlcEvent, Visibility, WayView, LINE_BYTES};
use si_isa::Program;

use crate::config::MachineConfig;
use crate::core::{Core, QuietPlan, TickCtx};
use crate::memory::Memory;
use crate::scheme::{SpeculationScheme, Unprotected};

/// An attacker/receiver memory operation.
///
/// The paper's receiver runs on another physical core and only its LLC
/// requests matter (§2.1 CrossCore); the agent issues exactly those without
/// simulating a second full pipeline (see DESIGN.md substitutions). Ops run
/// either immediately (between victim runs) or scheduled at an absolute
/// cycle (the "reference clock" accesses of the VD-AD/VI-AD orderings,
/// §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentOp {
    /// `clflush` the line containing this address (coherence-global).
    Flush(u64),
    /// Visible data access from `core`.
    Access {
        /// Issuing core (attribution in the LLC log).
        core: usize,
        /// Byte address.
        addr: u64,
    },
    /// Visible instruction-side access from `core` (Flush+Reload on code).
    FetchAccess {
        /// Issuing core.
        core: usize,
        /// Byte address.
        addr: u64,
    },
    /// Timed visible access; the observed latency is recorded and
    /// retrievable via [`Machine::take_agent_timings`].
    TimedAccess {
        /// Issuing core.
        core: usize,
        /// Byte address.
        addr: u64,
    },
    /// Empty `core`'s private caches (thrash-buffer walk).
    ClearPrivate(usize),
}

/// One recorded timed access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentTiming {
    /// Cycle the access ran.
    pub cycle: u64,
    /// Accessed address.
    pub addr: u64,
    /// Observed result.
    pub result: AccessResult,
}

/// Error returned when a run exceeds its cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout {
    /// Cycles executed before giving up.
    pub cycles: u64,
}

impl std::fmt::Display for Timeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core did not halt within {} cycles", self.cycles)
    }
}

impl std::error::Error for Timeout {}

#[derive(Debug, Clone)]
struct Shared {
    hierarchy: Hierarchy,
    memory: Memory,
    rng: StdRng,
    dram_jitter: u64,
}

/// The simulated machine.
///
/// # Example
///
/// ```
/// use si_cpu::{Machine, MachineConfig};
/// use si_isa::{Assembler, R1, R2};
///
/// let mut asm = Assembler::new(0);
/// asm.mov_imm(R1, 20);
/// asm.add(R2, R1, R1);
/// asm.halt();
///
/// let mut m = Machine::new(MachineConfig::default());
/// m.load_program(0, &asm.assemble()?);
/// m.run_core_to_halt(0, 10_000)?;
/// assert_eq!(m.core(0).reg(R2), 40);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    shared: Shared,
    cores: Vec<Core>,
    cycle: u64,
    scheduled: BTreeMap<u64, Vec<AgentOp>>,
    agent_timings: Vec<AgentTiming>,
    noise_rng: StdRng,
    /// Reused allocation for [`Machine::advance`]'s per-core quiet plans.
    quiet_plans: Vec<QuietPlan>,
}

impl Machine {
    /// Builds a machine; every core starts with an empty program and the
    /// [`Unprotected`] baseline scheme.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: MachineConfig) -> Machine {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid machine config: {e}"));
        let cores = (0..config.hierarchy.cores)
            .map(|i| {
                Core::new(
                    i,
                    config.core.clone(),
                    Program::new(),
                    Box::new(Unprotected),
                )
            })
            .collect();
        Machine {
            shared: Shared {
                hierarchy: Hierarchy::new(config.hierarchy.clone()),
                memory: Memory::new(),
                rng: StdRng::seed_from_u64(config.noise.seed),
                dram_jitter: config.noise.dram_jitter,
            },
            cores,
            cycle: 0,
            scheduled: BTreeMap::new(),
            agent_timings: Vec::new(),
            noise_rng: StdRng::seed_from_u64(config.noise.seed ^ 0xbadc_0ffe),
            quiet_plans: Vec::new(),
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Reseeds both noise RNG streams (DRAM jitter and the background
    /// agent) exactly as [`Machine::new`] would have from a config with
    /// `noise.seed = seed`, and records the seed in the config.
    ///
    /// This is the per-trial divergence point of checkpoint forking
    /// ([`crate::checkpoint::MachineCheckpoint::fork_with_seed`]): when
    /// neither stream has been consumed since construction — quiet-noise
    /// configs never draw from them — the reseeded machine is
    /// indistinguishable from one built fresh with the trial's seed.
    pub fn reseed_noise(&mut self, seed: u64) {
        self.config.noise.seed = seed;
        self.shared.rng = StdRng::seed_from_u64(seed);
        self.noise_rng = StdRng::seed_from_u64(seed ^ 0xbadc_0ffe);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Loads `program` onto `core_idx` (keeping that core's scheme) and
    /// merges the program's data into shared memory.
    pub fn load_program(&mut self, core_idx: usize, program: &Program) {
        self.shared.memory.load_program_data(program);
        let scheme = self.replace_core_scheme_placeholder(core_idx);
        self.cores[core_idx] =
            Core::new(core_idx, self.config.core.clone(), program.clone(), scheme);
    }

    /// Loads `program` onto `core_idx` under `scheme`.
    pub fn load_program_with_scheme(
        &mut self,
        core_idx: usize,
        program: &Program,
        scheme: Box<dyn SpeculationScheme>,
    ) {
        let entry = program.entry();
        self.load_shared_program_with_scheme(
            core_idx,
            std::sync::Arc::new(program.clone()),
            scheme,
            entry,
        );
    }

    /// Loads a **shared** program image onto `core_idx` under `scheme`,
    /// starting fetch at `entry` instead of the image's recorded entry
    /// point. Sampled trace replay builds one machine per representative
    /// interval from one image; this variant replaces the per-interval
    /// program clone with an `Arc` bump and passes the interval's start
    /// PC separately.
    pub fn load_shared_program_with_scheme(
        &mut self,
        core_idx: usize,
        program: std::sync::Arc<Program>,
        scheme: Box<dyn SpeculationScheme>,
        entry: u64,
    ) {
        self.shared.memory.load_program_data(&program);
        self.cores[core_idx] =
            Core::new_shared(core_idx, self.config.core.clone(), program, scheme, entry);
    }

    fn replace_core_scheme_placeholder(&mut self, _core_idx: usize) -> Box<dyn SpeculationScheme> {
        // Core does not expose its scheme; reloading a program resets to
        // the baseline unless a scheme is supplied explicitly.
        Box::new(Unprotected)
    }

    /// Access to a core.
    pub fn core(&self, idx: usize) -> &Core {
        &self.cores[idx]
    }

    /// Mutable access to a core (e.g. to enable tracing).
    pub fn core_mut(&mut self, idx: usize) -> &mut Core {
        &mut self.cores[idx]
    }

    /// The shared hierarchy (read-only; receivers inspect LLC state
    /// through dedicated agent ops).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.shared.hierarchy
    }

    /// Shared-memory access for test setup and result checks.
    pub fn memory(&self) -> &Memory {
        &self.shared.memory
    }

    /// Mutable shared-memory access (e.g. planting secrets).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.shared.memory
    }

    /// Schedules an agent op to run at an absolute cycle (the attacker's
    /// fixed-time reference access).
    pub fn schedule_op(&mut self, cycle: u64, op: AgentOp) {
        self.scheduled.entry(cycle).or_default().push(op);
    }

    /// Runs one agent op immediately, returning the access result for
    /// access-like ops.
    pub fn run_op(&mut self, op: AgentOp) -> Option<AccessResult> {
        let now = self.cycle;
        match op {
            AgentOp::Flush(addr) => {
                self.shared.hierarchy.flush_addr(addr);
                None
            }
            AgentOp::Access { core, addr } => Some(self.shared.hierarchy.read(
                now,
                core,
                addr,
                AccessClass::Data,
                Visibility::Visible,
            )),
            AgentOp::FetchAccess { core, addr } => Some(self.shared.hierarchy.read(
                now,
                core,
                addr,
                AccessClass::Instr,
                Visibility::Visible,
            )),
            AgentOp::TimedAccess { core, addr } => {
                // Timed accesses are the receiver's *measurement*: they
                // observe shared-MSHR contention (read_demand), unlike the
                // setup ops above, which abstract spread-out traffic.
                let result = self.shared.hierarchy.read_demand(
                    now,
                    core,
                    addr,
                    AccessClass::Data,
                    Visibility::Visible,
                );
                self.agent_timings.push(AgentTiming {
                    cycle: now,
                    addr,
                    result,
                });
                Some(result)
            }
            AgentOp::ClearPrivate(core) => {
                self.shared.hierarchy.clear_private(core);
                None
            }
        }
    }

    /// Takes the timed-access log.
    pub fn take_agent_timings(&mut self) -> Vec<AgentTiming> {
        std::mem::take(&mut self.agent_timings)
    }

    /// Diagnostic view of an LLC set (the Figure 8 printout).
    pub fn llc_set_view(&self, set: usize) -> Vec<WayView> {
        self.shared.hierarchy.llc_set_view(set)
    }

    /// Takes the visible-LLC access log (`C(E)` of §5.1).
    pub fn take_llc_log(&mut self) -> Vec<LlcEvent> {
        self.shared.hierarchy.take_log()
    }

    /// Shared-side MSHR occupancy and contention counters (cross-core
    /// demand misses contending past the LLC).
    pub fn shared_mshr_stats(&self) -> si_cache::SharedMshrStats {
        self.shared.hierarchy.shared_mshr_stats()
    }

    /// Advances the machine one cycle: scheduled agent ops, background
    /// noise, then each core.
    pub fn step(&mut self) {
        let now = self.cycle;
        // first_key_value guard: avoid a BTreeMap::remove probe per cycle.
        if self
            .scheduled
            .first_key_value()
            .is_some_and(|(&at, _)| at <= now)
        {
            if let Some(ops) = self.scheduled.remove(&now) {
                for op in ops {
                    self.run_op(op);
                }
            }
        }
        self.background_noise(now);
        let mut ctx = TickCtx {
            hierarchy: &mut self.shared.hierarchy,
            memory: &mut self.shared.memory,
            dram_jitter: self.shared.dram_jitter,
            rng: &mut self.shared.rng,
        };
        for core in &mut self.cores {
            core.tick(now, &mut ctx);
        }
        self.cycle += 1;
    }

    fn background_noise(&mut self, now: u64) {
        let n = self.config.noise;
        if n.background_period == 0 || !now.is_multiple_of(n.background_period) {
            return;
        }
        // The noise agent models uncontrolled co-tenant LLC traffic from
        // the last core: either single random-line accesses in a dedicated
        // high region (colliding with attack sets only through set-index
        // aliasing), or whole conflict-set bursts (see
        // [`NoiseConfig::burst_sets`]).
        let core = self.config.hierarchy.cores - 1;
        let base = 0x4000_0000 / LINE_BYTES;
        if self.config.noise.burst_sets {
            let llc = &self.config.hierarchy.llc;
            let sets = llc.sets as u64;
            let set = self.noise_rng.gen_range(0..sets);
            let rounds = llc.ways as u64 + 1;
            let start = self.noise_rng.gen_range(0..64) * sets;
            for k in 0..rounds {
                let line = (base / sets) * sets + set + (start + k * sets);
                self.shared.hierarchy.read(
                    now,
                    core,
                    line * LINE_BYTES,
                    AccessClass::Data,
                    Visibility::Visible,
                );
            }
        } else {
            let line = base + self.noise_rng.gen_range(0..n.background_lines);
            self.shared.hierarchy.read(
                now,
                core,
                line * LINE_BYTES,
                AccessClass::Data,
                Visibility::Visible,
            );
        }
    }

    /// Advances at least one cycle and at most to `limit`, skipping runs of
    /// idle cycles in one jump.
    ///
    /// When every core proves its tick would be a pure stall
    /// ([`Core::quiet_plan`]) and no scheduled agent op or background-noise
    /// cycle falls in the window, the machine jumps `cycle` straight to the
    /// earliest wake-up event and replays the skipped cycles' stall
    /// accounting exactly — cycle numbers, statistics, and trace events are
    /// bit-identical to stepping cycle-by-cycle. Otherwise it performs one
    /// normal [`step`](Machine::step).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `limit <= cycle`.
    pub fn advance(&mut self, limit: u64) {
        let now = self.cycle;
        debug_assert!(now < limit, "advance needs headroom");
        if self.config.disable_idle_skip {
            return self.step();
        }
        let mut bound = limit;
        // Scheduled agent ops: one due now forces a step; the next one
        // bounds the skip.
        match self.scheduled.first_key_value() {
            Some((&at, _)) if at <= now => return self.step(),
            Some((&at, _)) => bound = bound.min(at),
            None => {}
        }
        // Background noise runs on period multiples; never skip those.
        let period = self.config.noise.background_period;
        if period > 0 {
            if now.is_multiple_of(period) {
                return self.step();
            }
            bound = bound.min(now.next_multiple_of(period));
        }
        let mut plans = std::mem::take(&mut self.quiet_plans);
        plans.clear();
        for core in &self.cores {
            match core.quiet_plan(now) {
                Some(plan) => {
                    bound = bound.min(plan.until);
                    plans.push(plan);
                }
                None => {
                    self.quiet_plans = plans;
                    return self.step();
                }
            }
        }
        debug_assert!(bound > now, "quiet plans always look forward");
        let count = bound - now;
        for (core, plan) in self.cores.iter_mut().zip(&plans) {
            core.apply_quiet_cycles(now, count, plan);
        }
        self.cycle = bound;
        self.quiet_plans = plans;
    }

    /// Steps until core `idx` halts, skipping idle cycles (see
    /// [`Machine::advance`]; the result is bit-identical to stepping).
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the core does not halt within `max_cycles`.
    pub fn run_core_to_halt(&mut self, idx: usize, max_cycles: u64) -> Result<u64, Timeout> {
        let start = self.cycle;
        let deadline = start + max_cycles;
        while !self.cores[idx].halted() {
            if self.cycle >= deadline {
                return Err(Timeout {
                    cycles: self.cycle - start,
                });
            }
            self.advance(deadline);
        }
        Ok(self.cycle - start)
    }

    /// Advances a fixed number of cycles (idle runs skipped exactly).
    pub fn run_cycles(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            self.advance(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_cache::HitLevel;
    use si_isa::{Assembler, R1, R2, R3};

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn straight_line_program_computes() {
        let mut asm = Assembler::new(0);
        asm.mov_imm(R1, 6);
        asm.mov_imm(R2, 7);
        asm.mul(R3, R1, R2);
        asm.halt();
        let mut m = machine();
        m.load_program(0, &asm.assemble().unwrap());
        let cycles = m.run_core_to_halt(0, 10_000).unwrap();
        assert_eq!(m.core(0).reg(R3), 42);
        assert!(cycles > 0);
    }

    #[test]
    fn loads_and_stores_commit_to_shared_memory() {
        let mut asm = Assembler::new(0);
        asm.data_u64(0x2000, 123);
        asm.mov_imm(R1, 0x2000);
        asm.load(R2, R1, 0);
        asm.add_imm(R2, R2, 1);
        asm.store(R2, R1, 8);
        asm.halt();
        let mut m = machine();
        m.load_program(0, &asm.assemble().unwrap());
        m.run_core_to_halt(0, 10_000).unwrap();
        assert_eq!(m.core(0).reg(R2), 124);
        assert_eq!(m.memory().read_u64(0x2008), 124);
    }

    #[test]
    fn loops_with_branches_terminate_correctly() {
        let mut asm = Assembler::new(0);
        asm.mov_imm(R1, 0);
        asm.mov_imm(R2, 50);
        let top = asm.here("top");
        asm.add_imm(R1, R1, 1);
        asm.branch_ltu(R1, R2, top);
        asm.halt();
        let mut m = machine();
        m.load_program(0, &asm.assemble().unwrap());
        m.run_core_to_halt(0, 100_000).unwrap();
        assert_eq!(m.core(0).reg(R1), 50);
        let (_, mispredicts) = m.core(0).predictor_stats();
        assert!(mispredicts >= 1, "final iteration mispredicts");
    }

    #[test]
    fn timeout_reported_for_infinite_loop() {
        let mut asm = Assembler::new(0);
        let top = asm.here("top");
        asm.jump(top);
        let mut m = machine();
        m.load_program(0, &asm.assemble().unwrap());
        assert!(m.run_core_to_halt(0, 500).is_err());
    }

    #[test]
    fn agent_ops_flush_and_time() {
        let mut m = machine();
        m.run_op(AgentOp::Access {
            core: 1,
            addr: 0x4000,
        });
        let timed = m
            .run_op(AgentOp::TimedAccess {
                core: 1,
                addr: 0x4000,
            })
            .unwrap();
        assert_eq!(timed.level, HitLevel::L1);
        m.run_op(AgentOp::Flush(0x4000));
        let timed = m
            .run_op(AgentOp::TimedAccess {
                core: 1,
                addr: 0x4000,
            })
            .unwrap();
        assert_eq!(timed.level, HitLevel::Memory);
        assert_eq!(m.take_agent_timings().len(), 2);
    }

    #[test]
    fn scheduled_ops_run_at_their_cycle() {
        let mut m = machine();
        m.schedule_op(
            5,
            AgentOp::Access {
                core: 1,
                addr: 0x9000,
            },
        );
        m.run_cycles(5);
        assert!(!m.hierarchy().resident_anywhere(0x9000));
        m.run_cycles(1);
        assert!(m.hierarchy().resident_anywhere(0x9000));
    }

    #[test]
    fn background_noise_generates_llc_traffic() {
        let mut cfg = MachineConfig::default();
        cfg.noise.background_period = 10;
        let mut m = Machine::new(cfg);
        m.run_cycles(100);
        assert!(m.take_llc_log().len() >= 10);
    }

    #[test]
    fn two_cores_run_concurrently() {
        let mut a = Assembler::new(0);
        a.mov_imm(R1, 11);
        a.halt();
        let mut b = Assembler::new(0x10000);
        b.mov_imm(R1, 22);
        b.halt();
        let mut m = machine();
        m.load_program(0, &a.assemble().unwrap());
        m.load_program(1, &b.assemble().unwrap());
        m.run_core_to_halt(0, 10_000).unwrap();
        m.run_core_to_halt(1, 10_000).unwrap();
        assert_eq!(m.core(0).reg(R1), 11);
        assert_eq!(m.core(1).reg(R1), 22);
    }
}
