//! A TAGE branch predictor: TAgged GEometric history lengths.
//!
//! The bimodal table of [`BranchPredictor`](crate::BranchPredictor) keys
//! predictions on the branch PC alone, which is exactly why the paper's
//! mistraining loop works (§4.1): N taken outcomes at one PC saturate one
//! counter. Real frontends correlate on *history* — TAGE (Seznec &
//! Michaud, "A case for (partially) TAgged GEometric history length
//! branch prediction", JILP 2006) is the canonical design and the base of
//! every championship predictor since. Modeling it matters for the
//! paper's channels because interference measurements are gated by
//! *misprediction behaviour*: a history-correlated predictor both resists
//! naive per-PC mistraining and mispredicts on entirely different
//! instruction streams than a bimodal table does, changing where
//! speculative windows open (§2.3, §4.1).
//!
//! # Structure
//!
//! * a **base bimodal table** of 2-bit counters indexed by PC — the
//!   default prediction when no tagged bank matches;
//! * `BANKS` **tagged banks** `T1..T4`, indexed by PC hashed with a
//!   *folded* global-history register whose lengths grow geometrically
//!   ([`HIST_LENGTHS`] = 5, 15, 44, 130 — close to Seznec's published
//!   series). Each entry holds a partial tag, a 3-bit signed counter, and
//!   a 2-bit usefulness counter.
//!
//! # Bank selection, allocation, update
//!
//! Prediction picks the matching bank with the **longest** history (the
//! *provider*); the next-longest match (or the base table) is the
//! *alternate*. On a misprediction the predictor **allocates** a fresh
//! entry in a longer-history bank whose entry has usefulness 0,
//! decrementing usefulness along the way when none is free — the
//! classic TAGE replacement pressure.
//!
//! ```
//! use si_cpu::TagePredictor;
//!
//! let mut p = TagePredictor::new(1024);
//! // Cold: no tagged bank matches, the base table provides (weakly
//! // not-taken, like the bimodal predictor).
//! assert_eq!(p.provider_history_len(0x40), None);
//! assert!(!p.predict(0x40, 0x100).taken);
//!
//! // The base table mispredicts an alternating pattern eventually; the
//! // misprediction allocates a tagged entry, which then provides.
//! for i in 0..64u64 {
//!     let taken = i % 2 == 0;
//!     let pred = p.predict(0x40, 0x100);
//!     p.update(0x40, taken, 0x100, pred.taken != taken);
//! }
//! assert!(p.provider_history_len(0x40).is_some());
//! ```
//!
//! # Determinism and timing simplifications
//!
//! The global history register is mutated **only** in
//! [`TagePredictor::update`], i.e. in branch *resolution* order (the
//! writeback stage), never at fetch. A hardware TAGE speculatively
//! updates history at fetch and repairs it on squash; resolving at
//! update time is behaviourally equivalent for correct-path branches and
//! sidesteps checkpointing folded registers through the ROB. Likewise
//! the provider is recomputed at update time instead of being carried as
//! per-branch metadata. Both choices trade a little prediction accuracy
//! on wrong-path-adjacent branches for state that is a pure function of
//! the resolved branch stream — which is what makes sweep documents
//! byte-identical across thread counts and cache temperature. Graceful
//! usefulness aging (the periodic column reset of Seznec §3.2) is
//! omitted; workloads here are far shorter than the 256K-branch aging
//! period.

use std::collections::HashMap;

use crate::predictor::Prediction;

/// Geometric history lengths of the tagged banks, shortest first.
pub const HIST_LENGTHS: [usize; BANKS] = [5, 15, 44, 130];

/// Number of tagged banks.
pub const BANKS: usize = 4;

/// Entries per tagged bank.
const BANK_ENTRIES: usize = 512;

/// Partial-tag width in bits.
const TAG_BITS: usize = 8;

/// Bits of global history kept (≥ the longest bank length).
const HIST_BITS: usize = 192;

/// One tagged-bank entry: partial tag, 3-bit signed prediction counter
/// (−4..=3; ≥ 0 predicts taken), 2-bit usefulness counter.
#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    ctr: i8,
    useful: u8,
}

/// A history register folded down to `bits` by cyclic XOR (Seznec's
/// incremental implementation: shift in the newest bit, XOR out the
/// oldest at its folded position, wrap the overflow).
#[derive(Debug, Clone, Copy)]
struct Folded {
    comp: u64,
    bits: usize,
    hist_len: usize,
}

impl Folded {
    fn new(bits: usize, hist_len: usize) -> Folded {
        Folded {
            comp: 0,
            bits,
            hist_len,
        }
    }

    fn update(&mut self, newest: u64, oldest: u64) {
        self.comp = (self.comp << 1) | newest;
        self.comp ^= oldest << (self.hist_len % self.bits);
        self.comp ^= self.comp >> self.bits;
        self.comp &= (1 << self.bits) - 1;
    }
}

/// Per-bank folded-history registers: one for the index, two for the tag
/// (at different widths, so index and tag decorrelate).
#[derive(Debug, Clone, Copy)]
struct BankHash {
    index: Folded,
    tag0: Folded,
    tag1: Folded,
}

/// The TAGE predictor. See the [module docs](self) for structure and
/// update rules; it is a drop-in peer of
/// [`BranchPredictor`](crate::BranchPredictor) behind the
/// [`Predictor`](crate::Predictor) dispatch enum.
#[derive(Debug, Clone)]
pub struct TagePredictor {
    /// Base bimodal table (2-bit counters, initialized weakly not-taken).
    base: Vec<u8>,
    base_mask: u64,
    banks: [Vec<TageEntry>; BANKS],
    hashes: [BankHash; BANKS],
    /// Global history as a bit deque, newest bit at index `hist_pos`.
    hist: [bool; HIST_BITS],
    hist_pos: usize,
    btb: HashMap<u64, u64>,
    predicts: u64,
    mispredicts: u64,
}

impl TagePredictor {
    /// Creates a predictor whose base bimodal table has `base_entries`
    /// counters; the four tagged banks have a fixed 512 entries each.
    ///
    /// # Panics
    ///
    /// Panics if `base_entries` is not a power of two.
    pub fn new(base_entries: usize) -> TagePredictor {
        assert!(
            base_entries.is_power_of_two(),
            "base entries must be a power of two"
        );
        let bank_bits = BANK_ENTRIES.trailing_zeros() as usize;
        TagePredictor {
            base: vec![1; base_entries],
            base_mask: base_entries as u64 - 1,
            banks: std::array::from_fn(|_| vec![TageEntry::default(); BANK_ENTRIES]),
            hashes: std::array::from_fn(|b| BankHash {
                index: Folded::new(bank_bits, HIST_LENGTHS[b]),
                tag0: Folded::new(TAG_BITS, HIST_LENGTHS[b]),
                tag1: Folded::new(TAG_BITS - 1, HIST_LENGTHS[b]),
            }),
            hist: [false; HIST_BITS],
            hist_pos: 0,
            btb: HashMap::new(),
            predicts: 0,
            mispredicts: 0,
        }
    }

    /// Bank index for `pc` in bank `b`: PC hash XOR folded history.
    fn index(&self, b: usize, pc: u64) -> usize {
        let bank_bits = BANK_ENTRIES.trailing_zeros() as usize;
        let pc = pc >> 3;
        let h = pc ^ (pc >> bank_bits) ^ self.hashes[b].index.comp ^ (b as u64 + 1);
        (h as usize) & (BANK_ENTRIES - 1)
    }

    /// Partial tag for `pc` in bank `b`.
    fn tag(&self, b: usize, pc: u64) -> u16 {
        let pc = pc >> 3;
        let h = pc ^ self.hashes[b].tag0.comp ^ (self.hashes[b].tag1.comp << 1);
        (h as u16) & ((1 << TAG_BITS) - 1)
    }

    /// The matching bank with the longest history for `pc`, and the
    /// next-longest match below `below` when `below < BANKS`.
    fn matches(&self, pc: u64) -> Vec<usize> {
        (0..BANKS)
            .rev()
            .filter(|&b| self.banks[b][self.index(b, pc)].tag == self.tag(b, pc))
            .collect()
    }

    fn base_taken(&self, pc: u64) -> bool {
        self.base[((pc >> 3) & self.base_mask) as usize] >= 2
    }

    /// The provider bank's history length for `pc`, or `None` when only
    /// the base table would provide — observability for tests and
    /// doctests of bank selection.
    pub fn provider_history_len(&self, pc: u64) -> Option<usize> {
        self.matches(pc).first().map(|&b| HIST_LENGTHS[b])
    }

    /// Predicts the branch at `pc` whose statically encoded target is
    /// `static_target`. Direction comes from the provider bank (or the
    /// base table); the target from the BTB, falling back to the static
    /// target exactly like the bimodal predictor.
    pub fn predict(&mut self, pc: u64, static_target: u64) -> Prediction {
        self.predicts += 1;
        let taken = match self.matches(pc).first() {
            Some(&b) => self.banks[b][self.index(b, pc)].ctr >= 0,
            None => self.base_taken(pc),
        };
        let target = *self.btb.get(&pc).unwrap_or(&static_target);
        Prediction { taken, target }
    }

    /// Trains on a resolved branch outcome: updates the provider's
    /// counter, adjusts usefulness against the alternate prediction,
    /// allocates into a longer bank on misprediction, then shifts the
    /// outcome into the global history (and every folded register).
    pub fn update(&mut self, pc: u64, taken: bool, target: u64, mispredicted: bool) {
        if mispredicted {
            self.mispredicts += 1;
        }
        let matches = self.matches(pc);
        let provider = matches.first().copied();
        // Provider/alternate predictions from current table state (the
        // resolution-order simplification of the module docs).
        let (pred, alt_pred) = match provider {
            Some(b) => {
                let p = self.banks[b][self.index(b, pc)].ctr >= 0;
                let a = match matches.get(1) {
                    Some(&ab) => self.banks[ab][self.index(ab, pc)].ctr >= 0,
                    None => self.base_taken(pc),
                };
                (p, a)
            }
            None => {
                let p = self.base_taken(pc);
                (p, p)
            }
        };
        // Usefulness: the provider was useful iff it disagreed with the
        // alternate and was right.
        if let Some(b) = provider {
            if pred != alt_pred {
                let i = self.index(b, pc);
                let u = &mut self.banks[b][i].useful;
                if pred == taken {
                    *u = (*u + 1).min(3);
                } else {
                    *u = u.saturating_sub(1);
                }
            }
        }
        // Train the provider (3-bit signed saturating), or the base table.
        match provider {
            Some(b) => {
                let i = self.index(b, pc);
                let c = &mut self.banks[b][i].ctr;
                *c = if taken {
                    (*c + 1).min(3)
                } else {
                    (*c - 1).max(-4)
                };
            }
            None => {
                let i = ((pc >> 3) & self.base_mask) as usize;
                let c = &mut self.base[i];
                *c = if taken {
                    (*c + 1).min(3)
                } else {
                    c.saturating_sub(1)
                };
            }
        }
        // Allocation: on a misprediction with headroom, claim the first
        // longer-history entry with usefulness 0; otherwise decay them.
        let provider_rank = provider.map_or(0, |b| b + 1);
        if pred != taken && provider_rank < BANKS {
            let mut allocated = false;
            for b in provider_rank..BANKS {
                let i = self.index(b, pc);
                if self.banks[b][i].useful == 0 {
                    self.banks[b][i] = TageEntry {
                        tag: self.tag(b, pc),
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for b in provider_rank..BANKS {
                    let i = self.index(b, pc);
                    self.banks[b][i].useful = self.banks[b][i].useful.saturating_sub(1);
                }
            }
        }
        if taken {
            self.btb.insert(pc, target);
        }
        self.push_history(taken);
    }

    /// Shifts one outcome bit into the global history and incrementally
    /// refolds every bank's index/tag registers.
    fn push_history(&mut self, taken: bool) {
        self.hist_pos = (self.hist_pos + HIST_BITS - 1) % HIST_BITS;
        self.hist[self.hist_pos] = taken;
        let newest = taken as u64;
        for (hashes, &len) in self.hashes.iter_mut().zip(HIST_LENGTHS.iter()) {
            // The bit falling out of this bank's history window.
            let oldest = self.hist[(self.hist_pos + len) % HIST_BITS] as u64;
            hashes.index.update(newest, oldest);
            hashes.tag0.update(newest, oldest);
            hashes.tag1.update(newest, oldest);
        }
    }

    /// `(predictions, mispredictions)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.predicts, self.mispredicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_is_weakly_not_taken() {
        let mut p = TagePredictor::new(64);
        assert!(!p.predict(0x40, 0x100).taken);
        assert_eq!(p.provider_history_len(0x40), None);
    }

    #[test]
    fn monotone_training_flips_direction_like_bimodal() {
        let mut p = TagePredictor::new(64);
        p.update(0x40, true, 0x100, false);
        assert!(p.predict(0x40, 0x100).taken, "base counter 1 -> 2");
        p.update(0x40, false, 0, false);
        p.update(0x40, false, 0, false);
        assert!(!p.predict(0x40, 0x100).taken);
    }

    #[test]
    fn btb_overrides_static_target() {
        let mut p = TagePredictor::new(64);
        p.update(0x40, true, 0xbeef, false);
        assert_eq!(p.predict(0x40, 0x100).target, 0xbeef);
    }

    #[test]
    fn history_correlation_learns_alternation() {
        // A strict alternation is invisible to a bimodal table (counter
        // oscillates around the threshold) but trivially history-
        // predictable. After warmup TAGE must track it near-perfectly.
        let mut p = TagePredictor::new(1024);
        let mut late_wrong = 0;
        for i in 0..400u64 {
            let taken = i % 2 == 0;
            let pred = p.predict(0x40, 0x100);
            let wrong = pred.taken != taken;
            if i >= 200 && wrong {
                late_wrong += 1;
            }
            p.update(0x40, taken, 0x100, wrong);
        }
        assert!(
            late_wrong <= 4,
            "alternation still mispredicting {late_wrong}/200 after warmup"
        );
        assert!(p.provider_history_len(0x40).is_some());
    }

    #[test]
    fn allocation_decays_usefulness_when_banks_are_saturated() {
        // Drive many branch PCs with data-dependent-ish patterns; the
        // predictor must keep functioning (no panics, stats sane) while
        // entries churn.
        let mut p = TagePredictor::new(256);
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = 0x40 + (x % 64) * 8;
            let taken = (x >> 7) & 3 != 0;
            let pred = p.predict(pc, pc + 0x100);
            p.update(pc, taken, pc + 0x100, pred.taken != taken);
            let _ = i;
        }
        let (predicts, mispredicts) = p.stats();
        assert_eq!(predicts, 5000);
        assert!(mispredicts < predicts);
    }

    #[test]
    fn update_order_is_the_only_state_input() {
        // Two predictors fed the same resolved-branch stream are
        // identical regardless of interleaved predict() calls —
        // predictions never mutate tables or history.
        let mut a = TagePredictor::new(128);
        let mut b = TagePredictor::new(128);
        for i in 0..300u64 {
            let pc = 0x40 + (i % 7) * 8;
            let taken = (i * i) % 3 == 0;
            a.predict(pc, 0x200);
            a.predict(pc ^ 0x80, 0x300); // extra predicts on a only
            b.predict(pc, 0x200);
            a.update(pc, taken, 0x200, false);
            b.update(pc, taken, 0x200, false);
        }
        for i in 0..300u64 {
            let pc = 0x40 + (i % 7) * 8;
            assert_eq!(
                a.predict(pc, 0x200).taken,
                b.predict(pc, 0x200).taken,
                "divergence at pc {pc:#x}"
            );
        }
    }

    #[test]
    fn folded_history_stays_within_width() {
        let mut f = Folded::new(9, 130);
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            f.update(x & 1, (x >> 1) & 1);
            assert!(f.comp < (1 << 9));
        }
    }
}
