//! Copy-on-write machine checkpoints for trial forking.
//!
//! Attack grids run many bit-trials over an *identically prepared*
//! machine: warmup, predictor training, and calibration are the same for
//! every trial of a cell, and only the secret value and the per-trial
//! noise seed differ. A [`MachineCheckpoint`] snapshots the complete
//! machine state once — flat cache tag/stamp arenas, MSHR files, each
//! core's pipeline/ROB/RS/scheme state, the RNG streams, shared memory,
//! and the agent-op schedule — and every subsequent trial *forks* from
//! the snapshot instead of re-simulating setup.
//!
//! The copy-on-write contract: the snapshot itself is immutable and
//! shared (`Arc`), so holding a checkpoint costs one machine's memory no
//! matter how many trials fork from it; each [`fork`](MachineCheckpoint::fork)
//! materializes a private deep copy only at the moment a trial actually
//! runs — mutation never touches the shared snapshot.
//!
//! Seed handling is the one deliberate divergence point:
//! [`fork_with_seed`](MachineCheckpoint::fork_with_seed) reseeds both
//! noise RNG streams exactly as `Machine::new` would have for the trial's
//! seed. A fork is therefore byte-equivalent to a from-scratch machine
//! **iff neither stream was drawn from before the snapshot** — true for
//! quiet-noise configs (no DRAM jitter, no background agent), which is
//! the eligibility rule the attack layer enforces. The differential path
//! (`MachineConfig::disable_checkpoint`, `--no-checkpoint` in the CLI)
//! keeps the scratch path alive and proves the equivalence end to end.

use std::sync::Arc;

use crate::machine::Machine;

/// An immutable, shareable snapshot of a whole [`Machine`].
///
/// # Example
///
/// ```
/// use si_cpu::{Machine, MachineCheckpoint, MachineConfig};
/// use si_isa::{Assembler, R1};
///
/// let mut asm = Assembler::new(0);
/// asm.mov_imm(R1, 7);
/// asm.halt();
/// let mut m = Machine::new(MachineConfig::default());
/// m.load_program(0, &asm.assemble()?);
///
/// let ck = MachineCheckpoint::capture(&m);
/// // Forks are independent: running one does not disturb the snapshot.
/// let mut a = ck.fork();
/// a.run_core_to_halt(0, 10_000)?;
/// let mut b = ck.fork();
/// b.run_core_to_halt(0, 10_000)?;
/// assert_eq!(a.core(0).reg(R1), b.core(0).reg(R1));
/// assert_eq!(a.cycle(), b.cycle());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineCheckpoint {
    snapshot: Arc<Machine>,
}

impl MachineCheckpoint {
    /// Snapshots `machine` (one deep copy; forks share it from then on).
    pub fn capture(machine: &Machine) -> MachineCheckpoint {
        MachineCheckpoint {
            snapshot: Arc::new(machine.clone()),
        }
    }

    /// Wraps an owned machine without copying — for capture sites that
    /// already own the prepared machine.
    pub fn from_machine(machine: Machine) -> MachineCheckpoint {
        MachineCheckpoint {
            snapshot: Arc::new(machine),
        }
    }

    /// The cycle the snapshot was taken at (forks resume from here, so
    /// cycle accounting is identical to an unforked run).
    pub fn cycle(&self) -> u64 {
        self.snapshot.cycle()
    }

    /// Read-only view of the snapshot.
    pub fn machine(&self) -> &Machine {
        &self.snapshot
    }

    /// Materializes a private copy of the snapshot (the copy-on-write
    /// "write": nothing was copied until a trial actually runs).
    pub fn fork(&self) -> Machine {
        (*self.snapshot).clone()
    }

    /// Forks and reseeds the noise RNG streams for one trial, exactly as
    /// a from-scratch `Machine::new` with `noise.seed = seed` would have.
    /// See the module docs for when this is byte-equivalent to scratch.
    pub fn fork_with_seed(&self, seed: u64) -> Machine {
        let mut m = self.fork();
        m.reseed_noise(seed);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use si_isa::{Assembler, R1, R2, R3};

    fn counting_machine() -> Machine {
        let mut asm = Assembler::new(0);
        asm.data_u64(0x2000, 5);
        asm.mov_imm(R1, 0x2000);
        asm.load(R2, R1, 0);
        let top = asm.here("top");
        asm.add_imm(R3, R3, 1);
        asm.branch_ltu(R3, R2, top);
        asm.halt();
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(0, &asm.assemble().unwrap());
        m
    }

    /// Observable machine facts the round-trip tests compare. (The raw
    /// `Debug` rendering is unsuitable: `Memory`'s hash map iterates in
    /// instance-specific order.)
    fn observe(m: &Machine) -> (u64, [u64; 4], u64, bool) {
        (
            m.cycle(),
            [
                m.core(0).reg(R1),
                m.core(0).reg(R2),
                m.core(0).reg(R3),
                m.memory().read_u64(0x2000),
            ],
            m.core(0).stats().retired,
            m.core(0).halted(),
        )
    }

    #[test]
    fn fork_resumes_exactly_where_capture_left_off() {
        let mut m = counting_machine();
        m.run_cycles(20); // stop mid-flight
        let ck = MachineCheckpoint::capture(&m);
        assert_eq!(ck.cycle(), m.cycle());
        // Reference trajectory: the original machine runs to halt.
        m.run_core_to_halt(0, 100_000).unwrap();
        let want = observe(&m);
        // A fork reproduces it bit-for-bit.
        let mut f = ck.fork();
        f.run_core_to_halt(0, 100_000).unwrap();
        assert_eq!(observe(&f), want);
    }

    #[test]
    fn mutating_a_fork_leaves_the_snapshot_intact() {
        let mut m = counting_machine();
        m.run_cycles(10);
        let ck = MachineCheckpoint::capture(&m);
        let before = observe(ck.machine());
        // Mutate one fork aggressively: run it to halt and scribble on
        // its memory.
        let mut dirty = ck.fork();
        dirty.run_core_to_halt(0, 100_000).unwrap();
        dirty.memory_mut().write_u64(0x2000, 999);
        // The snapshot and fresh forks are unaffected.
        assert_eq!(observe(ck.machine()), before);
        let mut clean = ck.fork();
        assert_eq!(observe(&clean), before);
        clean.run_core_to_halt(0, 100_000).unwrap();
        assert_eq!(clean.memory().read_u64(0x2000), 5);
    }

    #[test]
    fn randomized_round_trip_snapshot_mutate_restore_equals_fresh() {
        // Proptest-style loop: at random capture points, a mutated fork
        // must never perturb what later forks observe, and every fork's
        // full trajectory must match the uncheckpointed machine's.
        for seed in 1_u64..=12 {
            let mut stop = seed.wrapping_mul(0x9e37_79b9).wrapping_rem(60) + 1;
            let mut reference = counting_machine();
            reference.run_core_to_halt(0, 100_000).unwrap();
            let want = observe(&reference);
            let mut m = counting_machine();
            m.run_cycles(stop);
            let ck = MachineCheckpoint::capture(&m);
            // Mutate: drive one fork partway, then abandon it.
            let mut scratchpad = ck.fork();
            stop = stop / 2 + 1;
            scratchpad.run_cycles(stop);
            scratchpad.memory_mut().write_u64(0x2000, seed);
            drop(scratchpad);
            // Restore == fresh: a new fork finishes identically to the
            // never-checkpointed run.
            let mut f = ck.fork();
            f.run_core_to_halt(0, 100_000).unwrap();
            assert_eq!(observe(&f), want, "seed {seed}");
        }
    }

    #[test]
    fn fork_with_seed_matches_a_fresh_machine_with_that_seed() {
        // On quiet noise the RNG streams are never consumed, so a
        // reseeded fork of a fresh machine must be indistinguishable
        // from a machine constructed with the trial seed.
        let trial_seed = 0x1234_5678;
        let base = counting_machine();
        let ck = MachineCheckpoint::capture(&base);
        let mut forked = ck.fork_with_seed(trial_seed);
        assert_eq!(forked.config().noise.seed, trial_seed);
        let mut cfg = MachineConfig::default();
        cfg.noise.seed = trial_seed;
        let mut asm = Assembler::new(0);
        asm.data_u64(0x2000, 5);
        asm.mov_imm(R1, 0x2000);
        asm.load(R2, R1, 0);
        let top = asm.here("top");
        asm.add_imm(R3, R3, 1);
        asm.branch_ltu(R3, R2, top);
        asm.halt();
        let mut fresh = Machine::new(cfg);
        fresh.load_program(0, &asm.assemble().unwrap());
        forked.run_core_to_halt(0, 100_000).unwrap();
        fresh.run_core_to_halt(0, 100_000).unwrap();
        assert_eq!(observe(&forked), observe(&fresh));
    }

    #[test]
    fn checkpoints_are_cheap_to_share() {
        let m = counting_machine();
        let ck = MachineCheckpoint::capture(&m);
        let clones: Vec<MachineCheckpoint> = (0..64).map(|_| ck.clone()).collect();
        // All clones alias one snapshot (copy-on-write sharing).
        for c in &clones {
            assert!(std::ptr::eq(c.machine(), ck.machine()));
        }
    }
}
