//! The unified reservation station.
//!
//! One pool of entries shared by every functional-unit class, as on the
//! paper's Kaby Lake target ("a unified reservation station, shared across
//! execution units, stores up to 97 micro-ops", §4.1). Its finite capacity
//! is the contended resource of the `G^I_RS` gadget: dependent instructions
//! that cannot issue pin entries, the pool fills, dispatch stalls, and the
//! frontend stops fetching (§3.2.2, Figure 5).

use si_isa::FuClass;

/// A source operand: ready with a value, or waiting on a producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Value available.
    Ready(u64),
    /// Waiting for the instruction with this sequence number to write back.
    Waiting(u64),
}

impl Operand {
    /// Returns the value if ready.
    pub fn value(&self) -> Option<u64> {
        match self {
            Operand::Ready(v) => Some(*v),
            Operand::Waiting(_) => None,
        }
    }
}

/// An instruction's source operands, stored inline (0–2 of them) so the
/// per-cycle issue scan and CDB wakeup never chase a heap pointer per
/// entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperandList {
    ops: [Option<Operand>; 2],
}

impl OperandList {
    /// An empty operand list.
    pub fn new() -> OperandList {
        OperandList::default()
    }

    /// Appends an operand.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds two operands.
    pub fn push(&mut self, op: Operand) {
        let slot = self
            .ops
            .iter_mut()
            .find(|o| o.is_none())
            .expect("at most two source operands");
        *slot = Some(op);
    }

    /// Iterates the operands.
    pub fn iter(&self) -> impl Iterator<Item = &Operand> {
        self.ops.iter().flatten()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Operand> {
        self.ops.iter_mut().flatten()
    }
}

impl FromIterator<Operand> for OperandList {
    fn from_iter<I: IntoIterator<Item = Operand>>(iter: I) -> OperandList {
        let mut list = OperandList::new();
        for op in iter {
            list.push(op);
        }
        list
    }
}

impl<'a> IntoIterator for &'a OperandList {
    type Item = &'a Operand;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Option<Operand>>>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter().flatten()
    }
}

/// One reservation-station entry.
#[derive(Debug, Clone)]
pub struct RsEntry {
    /// The instruction's sequence number (age key for scheduling).
    pub seq: u64,
    /// The functional-unit class it needs.
    pub fu: FuClass,
    /// Source operands.
    pub operands: OperandList,
    /// Set once issued. Issued entries normally leave the pool immediately;
    /// under the §5.4 "hold resources until non-speculative" defense they
    /// stay (occupying capacity) until retirement.
    pub issued: bool,
}

impl RsEntry {
    /// Whether every operand is ready.
    pub fn ready(&self) -> bool {
        self.operands.iter().all(|o| o.value().is_some())
    }
}

/// The unified reservation station.
#[derive(Debug, Clone)]
pub struct ReservationStation {
    entries: Vec<RsEntry>,
    capacity: usize,
}

impl ReservationStation {
    /// Creates an empty station.
    pub fn new(capacity: usize) -> ReservationStation {
        ReservationStation {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Occupied entries (issued-but-held entries count).
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether dispatch must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Inserts a dispatched instruction.
    ///
    /// # Panics
    ///
    /// Panics if the station is full.
    pub fn insert(&mut self, entry: RsEntry) {
        assert!(!self.is_full(), "RS overflow");
        self.entries.push(entry);
    }

    /// Broadcasts a produced value: every operand waiting on `seq` becomes
    /// ready (the common-data-bus wakeup).
    pub fn wake(&mut self, seq: u64, value: u64) {
        for e in &mut self.entries {
            for op in e.operands.iter_mut() {
                if let Operand::Waiting(s) = op {
                    if *s == seq {
                        *op = Operand::Ready(value);
                    }
                }
            }
        }
    }

    /// Iterates entries (unordered pool order; callers sort by `seq` for
    /// age-ordered scheduling).
    pub fn iter(&self) -> impl Iterator<Item = &RsEntry> {
        self.entries.iter()
    }

    /// Marks `seq` issued; removes it unless `hold` is set. (Pool order is
    /// not significant — schedulers sort by `seq` — so removal is a
    /// swap-remove, not a shift.)
    pub fn mark_issued(&mut self, seq: u64, hold: bool) {
        if hold {
            if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
                e.issued = true;
            }
        } else if let Some(i) = self.entries.iter().position(|e| e.seq == seq) {
            self.entries.swap_remove(i);
        }
    }

    /// Releases a held entry at retirement.
    pub fn release(&mut self, seq: u64) {
        if let Some(i) = self.entries.iter().position(|e| e.seq == seq) {
            self.entries.swap_remove(i);
        }
    }

    /// Drops every entry younger than `branch_seq` (squash path).
    pub fn squash_after(&mut self, branch_seq: u64) {
        self.entries.retain(|e| e.seq <= branch_seq);
    }

    /// Whether an *unissued* entry older than `seq` needs `fu` — the §5.4
    /// strict-age-priority reservation test.
    pub fn older_unissued_for(&self, fu: FuClass, seq: u64) -> bool {
        self.entries
            .iter()
            .any(|e| !e.issued && e.fu == fu && e.seq < seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, fu: FuClass, ops: Vec<Operand>) -> RsEntry {
        RsEntry {
            seq,
            fu,
            operands: ops.into_iter().collect(),
            issued: false,
        }
    }

    #[test]
    fn wakeup_readies_waiting_operands() {
        let mut rs = ReservationStation::new(4);
        rs.insert(entry(
            1,
            FuClass::IntAlu,
            vec![Operand::Waiting(0), Operand::Ready(5)],
        ));
        assert!(!rs.iter().next().unwrap().ready());
        rs.wake(0, 37);
        let e = rs.iter().next().unwrap();
        assert!(e.ready());
        assert_eq!(e.operands.iter().next().unwrap().value(), Some(37));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut rs = ReservationStation::new(2);
        rs.insert(entry(0, FuClass::IntAlu, vec![]));
        rs.insert(entry(1, FuClass::IntAlu, vec![]));
        assert!(rs.is_full());
    }

    #[test]
    #[should_panic(expected = "RS overflow")]
    fn overflow_panics() {
        let mut rs = ReservationStation::new(1);
        rs.insert(entry(0, FuClass::IntAlu, vec![]));
        rs.insert(entry(1, FuClass::IntAlu, vec![]));
    }

    #[test]
    fn issue_removes_by_default_but_holds_under_defense() {
        let mut rs = ReservationStation::new(4);
        rs.insert(entry(0, FuClass::IntAlu, vec![]));
        rs.insert(entry(1, FuClass::IntAlu, vec![]));
        rs.mark_issued(0, false);
        assert_eq!(rs.occupancy(), 1);
        rs.mark_issued(1, true);
        assert_eq!(rs.occupancy(), 1, "held entry still occupies a slot");
        assert!(rs.iter().next().unwrap().issued);
        rs.release(1);
        assert_eq!(rs.occupancy(), 0);
    }

    #[test]
    fn squash_drops_younger_only() {
        let mut rs = ReservationStation::new(8);
        for s in 0..5 {
            rs.insert(entry(s, FuClass::IntAlu, vec![]));
        }
        rs.squash_after(2);
        assert_eq!(rs.occupancy(), 3);
        assert!(rs.iter().all(|e| e.seq <= 2));
    }

    #[test]
    fn age_priority_reservation_detects_older_waiters() {
        let mut rs = ReservationStation::new(8);
        rs.insert(entry(3, FuClass::FpSqrt, vec![Operand::Waiting(1)]));
        rs.insert(entry(7, FuClass::FpSqrt, vec![]));
        // The younger (7) must see the older unissued sqrt (3).
        assert!(rs.older_unissued_for(FuClass::FpSqrt, 7));
        assert!(!rs.older_unissued_for(FuClass::FpSqrt, 3));
        assert!(!rs.older_unissued_for(FuClass::IntMul, 7));
    }
}
