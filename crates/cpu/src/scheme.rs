//! The speculation-scheme interface.
//!
//! Invisible-speculation proposals differ only in *when a speculative load
//! may touch the memory hierarchy and what happens when it becomes safe*
//! (§2.2). This module defines that policy surface; `si-schemes` provides
//! the implementations (Delay-on-Miss, InvisiSpec, SafeSpec, MuonTrap,
//! Conditional Speculation, CleanupSpec, and the §5 defenses). The core
//! consults the active scheme:
//!
//! * at every data access of a load that is not yet **safe**
//!   ([`SpeculationScheme::plan_unsafe_load`]);
//! * every cycle, to promote loads that have since become safe;
//! * at squashes ([`SpeculationScheme::on_squash`]), for schemes with
//!   rollback or filter state;
//! * at issue ([`SpeculationScheme::blocks_issue`]) and in the scheduler
//!   (resource-holding hooks), for the §5.2/§5.4 defenses.

use si_cache::{Hierarchy, HitLevel};

/// Per-entry facts the safety models need, in ROB (program) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafetyFlags {
    /// Global sequence number of the instruction.
    pub seq: u64,
    /// A conditional branch that has not resolved.
    pub unresolved_branch: bool,
    /// A load whose data has not returned (including delayed loads).
    pub load_incomplete: bool,
    /// A store or flush whose address is not yet known.
    pub store_addr_unknown: bool,
    /// An unretired `Fence` instruction.
    pub fence: bool,
}

/// A per-cycle snapshot of the ROB used to classify instructions as
/// safe/unsafe under the shadow models of §2.2/§5.2.
#[derive(Debug, Clone, Default)]
pub struct SafetyView {
    flags: Vec<SafetyFlags>,
}

impl SafetyView {
    /// Builds a view from per-entry flags listed head-to-tail.
    pub fn new(flags: Vec<SafetyFlags>) -> SafetyView {
        SafetyView { flags }
    }

    /// Recovers the flags vector so per-cycle callers can reuse its
    /// allocation for the next snapshot.
    pub fn into_flags(self) -> Vec<SafetyFlags> {
        self.flags
    }

    /// Number of ROB entries in the snapshot.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Position (0 = head) of the entry with sequence number `seq`.
    pub fn position_of(&self, seq: u64) -> Option<usize> {
        self.flags.binary_search_by_key(&seq, |f| f.seq).ok()
    }

    /// The flags at `pos`.
    pub fn flags(&self, pos: usize) -> &SafetyFlags {
        &self.flags[pos]
    }

    /// **Spectre model** safety: safe iff no older branch is unresolved
    /// ("a load is non-speculative iff it is older than the oldest
    /// unresolved branch", §1).
    pub fn spectre_safe(&self, pos: usize) -> bool {
        self.flags[..pos].iter().all(|f| !f.unresolved_branch)
    }

    /// **Futuristic model** safety: safe iff no older instruction can still
    /// squash — every older branch resolved, every older load performed,
    /// every older store/flush address known (§5.2; InvisiSpec's
    /// Futuristic mode unprotects a load "only when it becomes the oldest
    /// load or the oldest instruction in the ROB").
    pub fn futuristic_safe(&self, pos: usize) -> bool {
        self.flags[..pos]
            .iter()
            .all(|f| !f.unresolved_branch && !f.load_incomplete && !f.store_addr_unknown)
    }

    /// Whether an unretired program-level `Fence` exists older than `pos`.
    pub fn fence_blocked(&self, pos: usize) -> bool {
        self.flags[..pos].iter().any(|f| f.fence)
    }
}

/// What to do when an invisibly executed load becomes safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeAction {
    /// Apply the deferred replacement-state update (Delay-on-Miss after a
    /// speculative L1 hit).
    TouchReplacement,
    /// Perform the full visible access — InvisiSpec/SafeSpec *exposure*:
    /// fill every level as a normal access would have.
    Expose,
}

/// The scheme's decision for one not-yet-safe load access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPlan {
    /// Access normally (visible fills) — the unsafe baseline, or
    /// CleanupSpec (which undoes fills on squash via
    /// [`SpeculationScheme::on_squash`]).
    Visible,
    /// Execute invisibly: return data with honest latency, change no cache
    /// state now; apply `on_safe` when the load becomes safe.
    Invisible {
        /// Deferred state change, if any.
        on_safe: Option<SafeAction>,
        /// Overrides the probe latency (e.g. MuonTrap's L0 filter-cache
        /// hit, serviced at L1 speed from scheme-private state).
        latency_override: Option<u64>,
    },
    /// Delay the access entirely; the core re-issues it visibly when the
    /// load becomes safe (Delay-on-Miss).
    Delay,
}

/// Context handed to [`SpeculationScheme::plan_unsafe_load`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsafeLoadCtx {
    /// Issuing core.
    pub core: usize,
    /// Load's effective address.
    pub addr: u64,
    /// Where a probe says the line would hit (no state was changed).
    pub level: HitLevel,
    /// Current cycle.
    pub cycle: u64,
}

/// An invisible-speculation scheme or defense, as seen by the core.
///
/// Implementations must be deterministic, and — so checkpointed machines
/// can be shared across trial workers — thread-safe plain data
/// (`Send + Sync`). All methods with default bodies are optional hooks
/// for defenses and rollback schemes.
pub trait SpeculationScheme: std::fmt::Debug + Send + Sync {
    /// Human-readable name (used in experiment tables).
    fn name(&self) -> String;

    /// Classifies the instruction at `pos` as safe (retirement-bound for
    /// the scheme's shadow model) or still speculative.
    fn is_safe(&self, view: &SafetyView, pos: usize) -> bool;

    /// Plans the data access of a load that is **not** safe.
    fn plan_unsafe_load(&mut self, ctx: &UnsafeLoadCtx) -> LoadPlan;

    /// Clones the scheme behind its box, including any private state
    /// (MuonTrap's filter cache, a shadow model's bookkeeping). Required
    /// so a whole core — and with it a machine checkpoint — can be
    /// duplicated for copy-on-write trial forking.
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme>;

    /// Called when a mispredicted branch squashes; `spec_filled_lines` are
    /// LLC line addresses filled by squashed loads that accessed visibly
    /// (CleanupSpec's undo set), and `scheme-private` state such as
    /// MuonTrap's filter cache should be cleared here.
    fn on_squash(&mut self, hierarchy: &mut Hierarchy, core: usize, spec_filled_lines: &[u64]) {
        let _ = (hierarchy, core, spec_filled_lines);
    }

    /// Scheduler hook: returning `true` stalls issue of the instruction at
    /// `pos` this cycle (the §5.2 basic fence defense).
    fn blocks_issue(&self, view: &SafetyView, pos: usize) -> bool {
        let _ = (view, pos);
        false
    }

    /// §5.4 rule 1 ("no instruction releases its hardware resources while
    /// speculative"): when `true`, reservation-station entries are held
    /// until retirement and non-pipelined units are held until their
    /// occupant is safe.
    fn holds_resources_until_safe(&self) -> bool {
        false
    }

    /// Whether the scheme also shields the **instruction cache** from
    /// mis-speculated fetches (SafeSpec's shadow I-cache, MuonTrap's
    /// instruction filter cache, CleanupSpec's rollback). When `true`, the
    /// core rolls back I-side fills performed on a squashed path. Schemes
    /// that leave the I-cache unprotected — InvisiSpec and DoM, per
    /// §3.2.2/Table 1 — keep the default `false`, which is what the
    /// `G^I_RS` attack exploits.
    fn protects_ifetch(&self) -> bool {
        false
    }

    /// §5.4 rule 2 ("no instruction ever delays an older instruction"):
    /// when `true`, a younger instruction may not issue to a non-pipelined
    /// unit while any older instruction that needs the same unit is still
    /// waiting.
    fn strict_age_priority(&self) -> bool {
        false
    }
}

/// The unprotected baseline: every load is safe, every access visible —
/// a conventional out-of-order core with no defense (the paper's "unsafe
/// baseline").
#[derive(Debug, Clone, Copy, Default)]
pub struct Unprotected;

impl SpeculationScheme for Unprotected {
    fn name(&self) -> String {
        "Unprotected".to_owned()
    }

    fn is_safe(&self, _view: &SafetyView, _pos: usize) -> bool {
        true
    }

    fn plan_unsafe_load(&mut self, _ctx: &UnsafeLoadCtx) -> LoadPlan {
        LoadPlan::Visible
    }

    fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(seq: u64) -> SafetyFlags {
        SafetyFlags {
            seq,
            unresolved_branch: false,
            load_incomplete: false,
            store_addr_unknown: false,
            fence: false,
        }
    }

    #[test]
    fn spectre_safety_tracks_unresolved_branches() {
        let mut f = vec![flags(0), flags(1), flags(2)];
        f[1].unresolved_branch = true;
        let v = SafetyView::new(f);
        assert!(v.spectre_safe(0));
        assert!(v.spectre_safe(1)); // the branch itself is safe
        assert!(!v.spectre_safe(2)); // shadowed by the branch
    }

    #[test]
    fn futuristic_safety_is_stricter() {
        let mut f = vec![flags(0), flags(1), flags(2)];
        f[0].load_incomplete = true;
        let v = SafetyView::new(f);
        assert!(v.spectre_safe(2), "no branches -> spectre safe");
        assert!(!v.futuristic_safe(1), "older incomplete load blocks");
        assert!(!v.futuristic_safe(2));
        assert!(v.futuristic_safe(0), "head is always futuristic-safe");
    }

    #[test]
    fn store_addresses_block_futuristic() {
        let mut f = vec![flags(0), flags(1)];
        f[0].store_addr_unknown = true;
        let v = SafetyView::new(f);
        assert!(!v.futuristic_safe(1));
    }

    #[test]
    fn fences_block_by_position() {
        let mut f = vec![flags(0), flags(1), flags(2)];
        f[1].fence = true;
        let v = SafetyView::new(f);
        assert!(!v.fence_blocked(1));
        assert!(v.fence_blocked(2));
    }

    #[test]
    fn position_lookup_by_seq() {
        let v = SafetyView::new(vec![flags(5), flags(9), flags(12)]);
        assert_eq!(v.position_of(9), Some(1));
        assert_eq!(v.position_of(7), None);
    }

    #[test]
    fn unprotected_never_restricts() {
        let v = SafetyView::new(vec![flags(0)]);
        let s = Unprotected;
        assert!(s.is_safe(&v, 0));
        assert!(!s.blocks_issue(&v, 0));
        assert!(!s.holds_resources_until_safe());
        assert!(!s.strict_age_priority());
    }
}
