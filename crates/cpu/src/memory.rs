//! The machine's byte-addressed backing memory.

use std::collections::HashMap;

use si_isa::Program;

/// Sparse byte-addressed memory shared by all cores.
///
/// Holds architectural data only; cache presence lives in
/// [`si_cache::Hierarchy`]. Unwritten bytes read as zero.
///
/// # Example
///
/// ```
/// use si_cpu::Memory;
///
/// let mut m = Memory::new();
/// m.write_u64(0x100, 0xfeed);
/// assert_eq!(m.read_u64(0x100), 0xfeed);
/// assert_eq!(m.read_u64(0x9999), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    bytes: HashMap<u64, u8>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Loads a program's initial data segment.
    pub fn load_program_data(&mut self, program: &Program) {
        for (a, b) in program.data() {
            self.bytes.insert(a, b);
        }
    }

    /// Reads one byte (0 if never written).
    pub fn read_u8(&self, addr: u64) -> u8 {
        *self.bytes.get(&addr).unwrap_or(&0)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.bytes.insert(addr, value);
    }

    /// Reads a little-endian 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, byte) in value.to_le_bytes().iter().enumerate() {
            self.bytes.insert(addr + i as u64, *byte);
        }
    }

    /// Number of bytes ever written.
    pub fn footprint(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_isa::Assembler;

    #[test]
    fn words_roundtrip() {
        let mut m = Memory::new();
        m.write_u64(64, u64::MAX);
        assert_eq!(m.read_u64(64), u64::MAX);
        m.write_u64(64, 1);
        assert_eq!(m.read_u64(64), 1);
    }

    #[test]
    fn unwritten_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(12345), 0);
    }

    #[test]
    fn unaligned_words_overlap_correctly() {
        let mut m = Memory::new();
        m.write_u64(0, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0), 0x88);
        assert_eq!(m.read_u8(7), 0x11);
        assert_eq!(m.read_u64(1) & 0xff, 0x77);
    }

    #[test]
    fn program_data_loads() {
        let mut asm = Assembler::new(0);
        asm.halt();
        asm.data_u64(0x2000, 42);
        let p = asm.assemble().unwrap();
        let mut m = Memory::new();
        m.load_program_data(&p);
        assert_eq!(m.read_u64(0x2000), 42);
        assert_eq!(m.footprint(), 8);
    }
}
