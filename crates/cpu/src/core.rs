//! The out-of-order core: one cycle at a time.
//!
//! Pipeline phases run in a fixed order each cycle (completions, retire,
//! issue, load-store processing, writeback, squash, safe-promotion,
//! dispatch, fetch). Two ordering choices are load-bearing for the paper's
//! attacks:
//!
//! * **Issue runs before writeback**, so an operand woken this cycle can
//!   issue only next cycle. This models the wakeup/select gap that lets a
//!   ready mis-speculated instruction slip into a non-pipelined unit in the
//!   window where an older instruction's operand is still in flight — the
//!   cascading delay of `G^D_NPEU` (§3.2.2, Figure 3: "once f1 completes,
//!   f2 does not immediately become ready, due to f1's writeback delay; in
//!   contrast f'2 ... is already ready and so is issued").
//! * **Issue selection is age-ordered** among ready candidates, so the
//!   interference is a *delay*, not a starvation — exactly the paper's
//!   alternating `f'1, f1, f'2, f2, ...` interleaving.

use rand::rngs::StdRng;
use rand::Rng;

use si_cache::{line_of, AccessClass, Hierarchy, HitLevel, Visibility};
use si_isa::{isqrt, FuClass, Instruction, Opcode, Program, Reg, INSTR_BYTES, NUM_REGS};

use crate::config::CoreConfig;
use crate::exec::{ExecPayload, ExecUnits, InFlight};
use crate::frontend::{FetchOutcome, Frontend, FrontendQuiet};
use crate::memory::Memory;
use crate::predictor::Predictor;
use crate::rob::{fresh_rat, EntryState, Rat, RegTag, Rob, RobEntry};
use crate::rs::{Operand, ReservationStation, RsEntry};
use crate::scheme::{
    LoadPlan, SafeAction, SafetyFlags, SafetyView, SpeculationScheme, UnsafeLoadCtx,
};
use crate::stats::CoreStats;
use crate::trace::{Trace, TraceEvent};
use crate::MshrFile;

/// Shared machine state a core needs during its tick.
#[derive(Debug)]
pub struct TickCtx<'a> {
    /// The shared cache hierarchy.
    pub hierarchy: &'a mut Hierarchy,
    /// The shared backing memory.
    pub memory: &'a mut Memory,
    /// Maximum extra cycles on DRAM-level accesses (0 disables jitter).
    pub dram_jitter: u64,
    /// Seeded RNG for jitter (owned by the machine).
    pub rng: &'a mut StdRng,
}

#[derive(Debug, Clone, Copy)]
struct LoadCompletion {
    seq: u64,
    done_at: u64,
    value: u64,
}

/// A single out-of-order core.
///
/// Construct via [`Core::new`], then drive with [`Core::tick`] (normally
/// through [`Machine`](crate::Machine)). Architectural state is readable
/// with [`Core::reg`] once [`Core::halted`].
#[derive(Debug)]
pub struct Core {
    id: usize,
    config: CoreConfig,
    /// Shared, immutable program image: cores only read it (fetch), so
    /// clones — including every checkpoint fork — share one copy.
    program: std::sync::Arc<Program>,
    frontend: Frontend,
    predictor: Predictor,
    rob: Rob,
    rs: ReservationStation,
    exec: ExecUnits,
    rat: Rat,
    arch_regs: [u64; NUM_REGS],
    mshrs: MshrFile,
    pending_loads: Vec<u64>,
    load_completions: Vec<LoadCompletion>,
    /// `(cycle, line)` of I-fetch fills recorded while the active scheme
    /// protects the I-cache; rolled back on squash.
    spec_ifetch_fills: Vec<(u64, u64)>,
    wb_queue: Vec<(u64, ExecPayload)>,
    scheme: Box<dyn SpeculationScheme>,
    halted: bool,
    next_seq: u64,
    stats: CoreStats,
    trace: Trace,
    /// Reused allocation for per-cycle [`SafetyView`] snapshots.
    view_scratch: Vec<SafetyFlags>,
    /// Reused allocation for the issue stage's ready-candidate list.
    issue_scratch: Vec<(u64, FuClass)>,
    /// Reused allocation for the completion sweep.
    done_scratch: Vec<InFlight>,
    /// Reused allocation for the safe-promotion sweep.
    seq_scratch: Vec<u64>,
}

impl Clone for Core {
    /// Deep-copies the core, including the scheme's private state via
    /// [`SpeculationScheme::boxed_clone`] — the field that keeps `Clone`
    /// from being derivable. Machine checkpointing relies on this being a
    /// complete copy: any field omitted here would leak state between
    /// forked trials. The program image is the one exception — it is
    /// immutable and shared, so the clone bumps its `Arc` instead of
    /// copying it.
    fn clone(&self) -> Core {
        Core {
            id: self.id,
            config: self.config.clone(),
            program: self.program.clone(),
            frontend: self.frontend.clone(),
            predictor: self.predictor.clone(),
            rob: self.rob.clone(),
            rs: self.rs.clone(),
            exec: self.exec.clone(),
            rat: self.rat.clone(),
            arch_regs: self.arch_regs,
            mshrs: self.mshrs.clone(),
            pending_loads: self.pending_loads.clone(),
            load_completions: self.load_completions.clone(),
            spec_ifetch_fills: self.spec_ifetch_fills.clone(),
            wb_queue: self.wb_queue.clone(),
            scheme: self.scheme.boxed_clone(),
            halted: self.halted,
            next_seq: self.next_seq,
            stats: self.stats,
            trace: self.trace.clone(),
            view_scratch: self.view_scratch.clone(),
            issue_scratch: self.issue_scratch.clone(),
            done_scratch: self.done_scratch.clone(),
            seq_scratch: self.seq_scratch.clone(),
        }
    }
}

/// A proof that ticking the core would be a pure stall for every cycle in
/// `[now, until)`, carrying the per-cycle stall accounting the skipped
/// ticks would have performed. Produced by [`Core::quiet_plan`]; replayed
/// exactly by [`Core::apply_quiet_cycles`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct QuietPlan {
    /// First cycle at which the core may act again (`u64::MAX` when only
    /// external input could wake it).
    pub(crate) until: u64,
    icache_stall: bool,
    queue_stall: bool,
    rob_stall: bool,
    rs_stall: bool,
}

impl Core {
    /// Creates a core that will run `program` under `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(
        id: usize,
        config: CoreConfig,
        program: Program,
        scheme: Box<dyn SpeculationScheme>,
    ) -> Core {
        let entry = program.entry();
        Core::new_shared(id, config, std::sync::Arc::new(program), scheme, entry)
    }

    /// Creates a core over a **shared** program image, starting fetch at
    /// `entry` instead of the program's recorded entry point.
    ///
    /// Sampled trace replay builds one machine per representative
    /// interval from the same program; sharing the image and overriding
    /// the entry PC replaces a per-interval deep clone (and a mutated
    /// `set_entry`) with an `Arc` bump. `Core::new` is the
    /// `entry == program.entry()` special case.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new_shared(
        id: usize,
        config: CoreConfig,
        program: std::sync::Arc<Program>,
        scheme: Box<dyn SpeculationScheme>,
        entry: u64,
    ) -> Core {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid core config: {e}"));
        let frontend = if config.no_speculation {
            Frontend::new_no_speculation(entry, config.decode_queue, config.fetch_width)
        } else {
            Frontend::new(entry, config.decode_queue, config.fetch_width)
        };
        Core {
            id,
            frontend,
            predictor: Predictor::new(config.predictor_kind, config.predictor_entries),
            rob: Rob::new(config.rob_size),
            rs: ReservationStation::new(config.rs_size),
            exec: ExecUnits::new(&config.fu),
            rat: fresh_rat(),
            arch_regs: [0; NUM_REGS],
            mshrs: MshrFile::new(config.mshrs),
            pending_loads: Vec::new(),
            load_completions: Vec::new(),
            spec_ifetch_fills: Vec::new(),
            wb_queue: Vec::new(),
            scheme,
            halted: false,
            next_seq: 0,
            stats: CoreStats::default(),
            trace: Trace::new(),
            view_scratch: Vec::new(),
            issue_scratch: Vec::new(),
            done_scratch: Vec::new(),
            seq_scratch: Vec::new(),
            program,
            config,
        }
    }

    /// This core's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Committed architectural register value.
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.arch_regs[r.index()]
        }
    }

    /// Injects a committed architectural register value (writes to `r0`
    /// are discarded). Trace replay uses this to seed a freshly built
    /// core with the functional state at a sampled interval's start;
    /// calling it mid-execution on in-flight state is not meaningful.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.arch_regs[r.index()] = v;
            // A fresh core's RAT caches committed values directly;
            // keep it coherent so renamed operands see the injection.
            self.rat[r.index()] = RegTag::Value(v);
        }
    }

    /// Pre-trains the branch predictor on a resolved outcome without
    /// issuing a prediction — trace replay uses this to warm the
    /// predictor from recorded history before simulating a sample
    /// interval. Does not count as a prediction or misprediction in
    /// [`predictor_stats`](Core::predictor_stats).
    pub fn train_branch(&mut self, pc: u64, taken: bool, target: u64) {
        self.predictor.update(pc, taken, target, false);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// The pipeline trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables or disables pipeline tracing.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// The active speculation scheme's name.
    pub fn scheme_name(&self) -> String {
        self.scheme.name()
    }

    /// Current reorder-buffer occupancy.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Current reservation-station occupancy.
    pub fn rs_occupancy(&self) -> usize {
        self.rs.occupancy()
    }

    /// Branch predictor statistics `(predictions, mispredictions)`.
    pub fn predictor_stats(&self) -> (u64, u64) {
        self.predictor.stats()
    }

    /// Private (L1D) MSHRs currently in flight — the occupancy the
    /// `G^D_MSHR` gadget drives to capacity.
    pub fn mshr_in_flight(&self) -> usize {
        self.mshrs.in_flight()
    }

    /// Peak simultaneous private-MSHR occupancy observed.
    pub fn mshr_high_water(&self) -> usize {
        self.mshrs.high_water()
    }

    /// Lifetime issue count per execution port (index = port number) —
    /// the contention profile a port-pressure transmitter skews.
    pub fn port_issues(&self) -> &[u64] {
        self.exec.issues_per_port()
    }

    /// Advances the core by one cycle.
    pub fn tick(&mut self, now: u64, ctx: &mut TickCtx<'_>) {
        if self.halted {
            return;
        }
        self.stats.cycles += 1;
        self.exec.begin_cycle();

        self.collect_completions(now);
        self.retire(now, ctx);
        if self.halted {
            return;
        }
        let view = self.make_view();
        self.issue(now, &view);
        self.process_loads(now, ctx, &view);
        self.recycle_view(view);
        self.writeback(now);
        self.handle_squash(now, ctx);
        self.promote_safe(now, ctx);
        self.dispatch(now);
        self.fetch(now, ctx);
    }

    // ------------------------------------------------------------------
    // Idle-cycle skipping
    // ------------------------------------------------------------------

    /// Proves (conservatively) that ticking this core at `now` — and at
    /// every later cycle before the returned plan's `until` — would be a
    /// pure stall: no pipeline phase would mutate core, cache, or memory
    /// state, and the only per-cycle effects are the stall counters and
    /// stall trace events captured in the plan. Returns `None` whenever any
    /// phase might act, in which case the machine must tick cycle-by-cycle.
    ///
    /// The proof works because a quiet core can only be re-activated by a
    /// *timed* internal event (an execution-unit completion, a load
    /// completion, or the end of an I-fetch stall) — everything else in the
    /// pipeline is demand-driven off those events. `until` is the earliest
    /// such event; the machine additionally bounds the skip by scheduled
    /// agent ops and background-noise cycles, which are the only external
    /// inputs.
    pub(crate) fn quiet_plan(&self, now: u64) -> Option<QuietPlan> {
        let mut plan = QuietPlan {
            until: u64::MAX,
            icache_stall: false,
            queue_stall: false,
            rob_stall: false,
            rs_stall: false,
        };
        if self.halted {
            return Some(plan); // a halted tick is a no-op, forever
        }
        // O(1) rejections first — on busy cycles this function runs once
        // per cycle, so the common path must not rescan the ROB/RS.
        //
        // Phase 5 (writeback) acts on anything queued.
        if !self.wb_queue.is_empty() {
            return None;
        }
        // Phase 2 (retire) acts once the head is done.
        if self.rob.head().is_some_and(|h| h.state == EntryState::Done) {
            return None;
        }
        // Phase 9 (fetch): stopped is silent; stalls are replayable
        // per-cycle counters (+ trace events); anything else fetches.
        match self.frontend.quiet_state(now) {
            FrontendQuiet::Stopped => {}
            FrontendQuiet::Stalled => {
                plan.icache_stall = true;
                plan.until = plan.until.min(self.frontend.stall_deadline());
            }
            FrontendQuiet::QueueFull => plan.queue_stall = true,
            FrontendQuiet::Active => return None,
        }
        // Phase 8 (dispatch): either nothing is queued, or the stall is a
        // per-cycle counter we can replay.
        if let Some(next) = self.frontend.peek() {
            if self.rob.is_full() {
                plan.rob_stall = true;
            } else if next.instr.opcode.fu_class() != FuClass::None && self.rs.is_full() {
                plan.rs_stall = true;
            } else {
                return None; // would dispatch
            }
        }
        // Phase 1 (completions): due events force a tick; pending ones
        // bound the skip.
        if let Some(t) = self.exec.next_done_at() {
            if t <= now {
                return None;
            }
            plan.until = plan.until.min(t);
        }
        for c in &self.load_completions {
            if c.done_at <= now {
                return None;
            }
            plan.until = plan.until.min(c.done_at);
        }
        // Phase 3 (issue): any ready candidate may issue — or, under a
        // defense, accrue per-cycle issue-stall counters — so tick.
        if self.rs.iter().any(|e| !e.issued && e.ready()) {
            return None;
        }
        // Phase 4 (LSU): non-delayed pending loads retry (and may count
        // MSHR stalls) every cycle; delayed loads park silently.
        for seq in &self.pending_loads {
            if self.rob.get(*seq).is_some_and(|e| !e.delayed) {
                return None;
            }
        }
        // Phase 6 (squash) acts on any unhandled resolved mispredict.
        if self
            .rob
            .iter()
            .any(|e| e.mispredicted && e.resolved && !e.squash_handled)
        {
            return None;
        }
        // Phase 7 (safe promotion) acts iff a deferred load is safe now.
        // Safety can only change through events (which bound the skip), so
        // checking once covers the whole window.
        if self
            .rob
            .iter()
            .any(|e| e.delayed || e.pending_safe_action.is_some())
        {
            let view = self.safety_view();
            for (pos, e) in self.rob.iter().enumerate() {
                let actionable =
                    e.delayed || (e.pending_safe_action.is_some() && e.state == EntryState::Done);
                if actionable && self.scheme.is_safe(&view, pos) {
                    return None;
                }
            }
        }
        debug_assert!(plan.until > now);
        Some(plan)
    }

    /// Replays the per-cycle effects of `count` skipped quiet cycles
    /// starting at `from`, exactly as `count` calls to [`Core::tick`]
    /// would have under `plan`'s conditions.
    pub(crate) fn apply_quiet_cycles(&mut self, from: u64, count: u64, plan: &QuietPlan) {
        if self.halted || count == 0 {
            return;
        }
        self.stats.cycles += count;
        if plan.icache_stall {
            self.stats.fetch_stall_icache += count;
            if self.trace.enabled() {
                for cycle in from..from + count {
                    self.trace.record(
                        cycle,
                        TraceEvent::FetchStall {
                            reason: crate::trace::StallReason::ICacheMiss,
                        },
                    );
                }
            }
        } else if plan.queue_stall {
            self.stats.fetch_stall_queue += count;
            if self.trace.enabled() {
                for cycle in from..from + count {
                    self.trace.record(
                        cycle,
                        TraceEvent::FetchStall {
                            reason: crate::trace::StallReason::QueueFull,
                        },
                    );
                }
            }
        }
        if plan.rob_stall {
            self.stats.rob_full_stalls += count;
        } else if plan.rs_stall {
            self.stats.rs_full_stalls += count;
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: completions
    // ------------------------------------------------------------------

    fn collect_completions(&mut self, now: u64) {
        let hold = self.scheme.holds_resources_until_safe();
        let mut done = std::mem::take(&mut self.done_scratch);
        self.exec.drain_done_into(now, &mut done);
        if hold && !done.is_empty() {
            let view = self.make_view();
            for op in done.drain(..) {
                if op.non_pipelined && !self.op_is_safe(&view, op.seq) {
                    // §5.4 rule 1: the unit (and the result) are held while
                    // the occupant is speculative.
                    self.exec.hold_port(op.port, now + 1);
                    self.requeue_inflight(op, now + 1);
                } else {
                    self.wb_queue.push((op.seq, op.payload));
                }
            }
            self.recycle_view(view);
        } else {
            for op in done.drain(..) {
                self.wb_queue.push((op.seq, op.payload));
            }
        }
        self.done_scratch = done;
        self.mshrs.drain_ready(now);
        let mut i = 0;
        while i < self.load_completions.len() {
            if self.load_completions[i].done_at <= now {
                let c = self.load_completions.swap_remove(i);
                self.wb_queue.push((c.seq, ExecPayload::Value(c.value)));
            } else {
                i += 1;
            }
        }
    }

    fn op_is_safe(&self, view: &SafetyView, seq: u64) -> bool {
        match view.position_of(seq) {
            Some(pos) => self.scheme.is_safe(view, pos),
            None => true, // squashed or retired: nothing to protect
        }
    }

    fn requeue_inflight(&mut self, op: InFlight, done_at: u64) {
        // Re-inject with a later completion; implemented by re-issuing the
        // payload through the load-completion queue to keep exec simple.
        match op.payload {
            ExecPayload::Value(v) => self.load_completions.push(LoadCompletion {
                seq: op.seq,
                done_at,
                value: v,
            }),
            other => {
                // Non-value payloads from non-pipelined units do not exist
                // (sqrt/div produce values), but stay conservative.
                self.wb_queue.push((op.seq, other));
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: retire
    // ------------------------------------------------------------------

    fn retire(&mut self, now: u64, ctx: &mut TickCtx<'_>) {
        for _ in 0..self.config.retire_width {
            let Some(head) = self.rob.head() else { return };
            if head.state != EntryState::Done {
                return;
            }
            if head.mispredicted && !head.squash_handled {
                return; // squash first (later this cycle), retire next cycle
            }
            let mut entry = self.rob.pop_head().expect("head exists");
            // Apply any deferred cache action that never found an earlier
            // safe point (at the head everything is safe).
            if let Some(action) = entry.pending_safe_action.take() {
                self.apply_safe_action(now, ctx, &entry, action);
            }
            match entry.instr.opcode {
                Opcode::Store => {
                    let addr = entry.addr.expect("store address known at retire");
                    let value = entry.store_value.expect("store value known at retire");
                    ctx.memory.write_u64(addr, value);
                    ctx.hierarchy.write(now, self.id, addr);
                }
                Opcode::Flush => {
                    let addr = entry.addr.expect("flush address known at retire");
                    ctx.hierarchy.flush_addr(addr);
                }
                Opcode::Halt => {
                    self.halted = true;
                }
                _ => {}
            }
            if let (Some(dst), Some(result)) = (entry.instr.writes(), entry.result) {
                self.arch_regs[dst.index()] = result;
                if self.rat[dst.index()] == RegTag::Rob(entry.seq) {
                    self.rat[dst.index()] = RegTag::Value(result);
                }
                // Stale `Rob(seq)` references in outstanding branch
                // checkpoints are resolved lazily when a checkpoint is
                // restored (see handle_squash) — patching every resident
                // checkpoint here would rescan the ROB per retirement.
            }
            if self.scheme.holds_resources_until_safe() {
                self.rs.release(entry.seq);
            }
            self.stats.retired += 1;
            self.trace.record(
                now,
                TraceEvent::Retire {
                    seq: entry.seq,
                    pc: entry.pc,
                },
            );
            if self.halted {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: issue (age-ordered, before writeback)
    // ------------------------------------------------------------------

    fn entry_flags(e: &RobEntry) -> SafetyFlags {
        SafetyFlags {
            seq: e.seq,
            unresolved_branch: e.is_branch() && !e.resolved,
            load_incomplete: e.is_load() && e.state != EntryState::Done,
            store_addr_unknown: e.is_store_like() && e.state != EntryState::Done,
            fence: e.instr.opcode == Opcode::Fence,
        }
    }

    fn safety_view(&self) -> SafetyView {
        SafetyView::new(self.rob.iter().map(Self::entry_flags).collect())
    }

    /// [`safety_view`](Core::safety_view) into the reused scratch
    /// allocation; pair with [`recycle_view`](Core::recycle_view).
    fn make_view(&mut self) -> SafetyView {
        let mut flags = std::mem::take(&mut self.view_scratch);
        flags.clear();
        flags.extend(self.rob.iter().map(Self::entry_flags));
        SafetyView::new(flags)
    }

    fn recycle_view(&mut self, view: SafetyView) {
        self.view_scratch = view.into_flags();
    }

    fn issue(&mut self, now: u64, view: &SafetyView) {
        let mut candidates = std::mem::take(&mut self.issue_scratch);
        candidates.clear();
        candidates.extend(
            self.rs
                .iter()
                .filter(|e| !e.issued && e.ready())
                .map(|e| (e.seq, e.fu)),
        );
        candidates.sort_by_key(|(seq, _)| *seq);
        let strict_age = self.scheme.strict_age_priority();
        let hold = self.scheme.holds_resources_until_safe();
        for &(seq, class) in &candidates {
            let Some(pos) = view.position_of(seq) else {
                continue;
            };
            if view.fence_blocked(pos) {
                continue;
            }
            if self.scheme.blocks_issue(view, pos) {
                self.stats.defense_issue_stalls += 1;
                continue;
            }
            let timing = self.config.fu.timing(class);
            if strict_age && !timing.pipelined && self.rs.older_unissued_for(class, seq) {
                continue; // §5.4 rule 2: reserve the unit for the older op
            }
            let Some(port) = self.exec.free_port(&self.config.fu, class, now) else {
                self.stats.port_contention_stalls += 1;
                continue;
            };
            let mut operands = [0u64; 2];
            let mut n_operands = 0;
            for o in &self
                .rs
                .iter()
                .find(|e| e.seq == seq)
                .expect("candidate exists")
                .operands
            {
                operands[n_operands] = o.value().expect("candidate is ready");
                n_operands += 1;
            }
            let entry = self.rob.get(seq).expect("RS entry has a ROB entry");
            let payload = Self::make_payload(&entry.instr, entry.pc, &operands[..n_operands]);
            self.exec
                .issue(&self.config.fu, class, port, seq, now, payload);
            let entry = self.rob.get_mut(seq).expect("checked above");
            entry.state = EntryState::Issued;
            entry.issued_at = Some(now);
            self.rs.mark_issued(seq, hold);
            self.stats.issued += 1;
            self.trace.record(now, TraceEvent::Issue { seq, port });
        }
        self.issue_scratch = candidates;
    }

    fn make_payload(instr: &Instruction, pc: u64, ops: &[u64]) -> ExecPayload {
        let s1 = ops.first().copied().unwrap_or(0);
        let s2 = ops.get(1).copied().unwrap_or(0);
        match instr.opcode {
            Opcode::Load => ExecPayload::AddrReady {
                addr: s1.wrapping_add(instr.imm as u64),
            },
            Opcode::Store => ExecPayload::StoreReady {
                addr: s1.wrapping_add(instr.imm as u64),
                value: s2,
            },
            Opcode::Flush => ExecPayload::FlushReady {
                addr: s1.wrapping_add(instr.imm as u64),
            },
            Opcode::Branch => {
                let taken = instr.cond.eval(s1, s2);
                let next_pc = if taken {
                    instr.imm as u64
                } else {
                    pc + INSTR_BYTES
                };
                ExecPayload::BranchResolved { next_pc, taken }
            }
            _ => ExecPayload::Value(Self::compute_alu(instr, s1, s2)),
        }
    }

    /// ALU semantics, kept identical to [`si_isa::Interpreter`] (checked by
    /// the differential property tests in `tests/`).
    fn compute_alu(instr: &Instruction, s1: u64, s2: u64) -> u64 {
        match instr.opcode {
            Opcode::Add => s1.wrapping_add(s2),
            Opcode::Sub => s1.wrapping_sub(s2),
            Opcode::And => s1 & s2,
            Opcode::Or => s1 | s2,
            Opcode::Xor => s1 ^ s2,
            Opcode::Shl => s1.wrapping_shl((s2 & 63) as u32),
            Opcode::Shr => s1.wrapping_shr((s2 & 63) as u32),
            Opcode::AddImm => s1.wrapping_add(instr.imm as u64),
            Opcode::Mul => s1.wrapping_mul(s2),
            Opcode::Sqrt => isqrt(s1),
            Opcode::Div => s1 / s2.max(1),
            other => unreachable!("{other:?} is not an ALU opcode"),
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: load-store unit
    // ------------------------------------------------------------------

    fn process_loads(&mut self, now: u64, ctx: &mut TickCtx<'_>, view: &SafetyView) {
        let pending = std::mem::take(&mut self.pending_loads);
        let mut still_pending = Vec::with_capacity(pending.len());
        for seq in pending {
            match self.try_load(now, ctx, view, seq) {
                LoadStep::Done => {}
                LoadStep::Retry => still_pending.push(seq),
                LoadStep::Squashed => {}
            }
        }
        self.pending_loads = still_pending;
    }

    fn try_load(
        &mut self,
        now: u64,
        ctx: &mut TickCtx<'_>,
        view: &SafetyView,
        seq: u64,
    ) -> LoadStep {
        let Some(entry) = self.rob.get(seq) else {
            return LoadStep::Squashed;
        };
        if entry.delayed {
            return LoadStep::Retry; // waiting to become safe
        }
        let addr = entry.addr.expect("pending load has an address");
        // Store-to-load ordering: wait for older stores' addresses; forward
        // from the youngest older store to the same address.
        let mut forward: Option<u64> = None;
        for older in self.rob.iter().take_while(|e| e.seq < seq) {
            if older.is_store_like() {
                if older.state != EntryState::Done {
                    return LoadStep::Retry;
                }
                if older.instr.opcode == Opcode::Store && older.addr == Some(addr) {
                    forward = older.store_value;
                }
            }
        }
        if let Some(value) = forward {
            self.load_completions.push(LoadCompletion {
                seq,
                done_at: now + 1,
                value,
            });
            return LoadStep::Done;
        }
        let pos = view.position_of(seq).expect("pending load is in the ROB");
        let safe = self.scheme.is_safe(view, pos);
        let level = ctx.hierarchy.probe_level(self.id, addr, AccessClass::Data);
        if safe {
            return self.access_visible(now, ctx, seq, addr, level, false);
        }
        let plan = self.scheme.plan_unsafe_load(&UnsafeLoadCtx {
            core: self.id,
            addr,
            level,
            cycle: now,
        });
        match plan {
            LoadPlan::Visible => self.access_visible(now, ctx, seq, addr, level, true),
            LoadPlan::Invisible {
                on_safe,
                latency_override,
            } => self.access_invisible(now, ctx, seq, addr, level, on_safe, latency_override),
            LoadPlan::Delay => {
                let entry = self.rob.get_mut(seq).expect("exists");
                entry.delayed = true;
                self.stats.delayed_loads += 1;
                self.trace
                    .record(now, TraceEvent::LoadDelayed { seq, addr });
                LoadStep::Retry
            }
        }
    }

    fn dram_latency(&self, base: u64, level: HitLevel, ctx: &mut TickCtx<'_>) -> u64 {
        if level == HitLevel::Memory && ctx.dram_jitter > 0 {
            base + ctx.rng.gen_range(0..=ctx.dram_jitter)
        } else {
            base
        }
    }

    fn access_visible(
        &mut self,
        now: u64,
        ctx: &mut TickCtx<'_>,
        seq: u64,
        addr: u64,
        level: HitLevel,
        speculative: bool,
    ) -> LoadStep {
        let line = line_of(addr);
        let mut new_fill = false;
        let done_at = if level == HitLevel::L1 {
            let res = ctx.hierarchy.read_demand(
                now,
                self.id,
                addr,
                AccessClass::Data,
                Visibility::Visible,
            );
            now + res.latency
        } else if let Some(id) = self.mshrs.lookup(line) {
            // Coalesce onto the outstanding miss; the fill (and any state
            // change) belongs to the primary miss, so no new access here.
            self.mshrs.coalesce(id, seq);
            self.mshrs.ready_at(id)
        } else if self.mshrs.is_full() {
            // Structural hazard: the access is not sent at all this cycle —
            // the delay the G^D_MSHR gadget manufactures (§3.2.2, Fig. 4).
            self.stats.mshr_stalls += 1;
            self.trace.record(now, TraceEvent::MshrStall { seq, addr });
            return LoadStep::Retry;
        } else {
            let res = ctx.hierarchy.read_demand(
                now,
                self.id,
                addr,
                AccessClass::Data,
                Visibility::Visible,
            );
            let latency = self.dram_latency(res.latency, level, ctx);
            let ready = now + latency;
            self.mshrs
                .allocate(line, ready, seq)
                .expect("fullness checked above");
            new_fill = true;
            ready
        };
        let value = ctx.memory.read_u64(addr);
        self.load_completions.push(LoadCompletion {
            seq,
            done_at,
            value,
        });
        if speculative && new_fill {
            // Record for CleanupSpec-style rollback on squash.
            self.rob.get_mut(seq).expect("exists").spec_fill_line = Some(line);
        }
        self.trace.record(
            now,
            TraceEvent::LoadAccess {
                seq,
                addr,
                level,
                visible: true,
            },
        );
        LoadStep::Done
    }

    #[allow(clippy::too_many_arguments)]
    fn access_invisible(
        &mut self,
        now: u64,
        ctx: &mut TickCtx<'_>,
        seq: u64,
        addr: u64,
        level: HitLevel,
        on_safe: Option<SafeAction>,
        latency_override: Option<u64>,
    ) -> LoadStep {
        let line = line_of(addr);
        let needs_mshr = latency_override.is_none() && level != HitLevel::L1;
        let done_at = if needs_mshr {
            if let Some(id) = self.mshrs.lookup(line) {
                self.mshrs.coalesce(id, seq);
                self.mshrs.ready_at(id)
            } else if self.mshrs.is_full() {
                // Check *before* touching the hierarchy: the request is
                // not sent at all this cycle, so it must not occupy a
                // shared-side MSHR entry either (a demand read would).
                self.stats.mshr_stalls += 1;
                self.trace.record(now, TraceEvent::MshrStall { seq, addr });
                return LoadStep::Retry;
            } else {
                let res = ctx.hierarchy.read_demand(
                    now,
                    self.id,
                    addr,
                    AccessClass::Data,
                    Visibility::Invisible,
                );
                let latency = self.dram_latency(res.latency, level, ctx);
                let ready = now + latency;
                self.mshrs
                    .allocate(line, ready, seq)
                    .expect("fullness checked above");
                ready
            }
        } else {
            let latency = latency_override.unwrap_or_else(|| {
                ctx.hierarchy
                    .read_demand(now, self.id, addr, AccessClass::Data, Visibility::Invisible)
                    .latency
            });
            now + latency
        };
        let value = ctx.memory.read_u64(addr);
        self.load_completions.push(LoadCompletion {
            seq,
            done_at,
            value,
        });
        let entry = self.rob.get_mut(seq).expect("exists");
        entry.pending_safe_action = on_safe;
        self.stats.invisible_loads += 1;
        self.trace.record(
            now,
            TraceEvent::LoadAccess {
                seq,
                addr,
                level,
                visible: false,
            },
        );
        LoadStep::Done
    }

    // ------------------------------------------------------------------
    // Phase 5: writeback (CDB)
    // ------------------------------------------------------------------

    fn writeback(&mut self, now: u64) {
        self.wb_queue.sort_by_key(|(seq, _)| *seq);
        // Process a prefix bounded by the CDB width; anything past it stays
        // queued (sorted) for next cycle — no reallocation per cycle.
        let mut granted = 0;
        let mut idx = 0;
        while idx < self.wb_queue.len() && granted < self.config.cdb_width {
            let (seq, payload) = self.wb_queue[idx];
            idx += 1;
            let Some(entry) = self.rob.get_mut(seq) else {
                continue; // squashed in flight: result dropped, no CDB slot
            };
            granted += 1;
            match payload {
                ExecPayload::Value(v) => {
                    entry.state = EntryState::Done;
                    entry.result = Some(v);
                    entry.completed_at = Some(now);
                    self.rs.wake(seq, v);
                    self.trace.record(now, TraceEvent::Writeback { seq });
                }
                ExecPayload::AddrReady { addr } => {
                    entry.addr = Some(addr);
                    self.pending_loads.push(seq);
                }
                ExecPayload::StoreReady { addr, value } => {
                    entry.addr = Some(addr);
                    entry.store_value = Some(value);
                    entry.state = EntryState::Done;
                    entry.completed_at = Some(now);
                }
                ExecPayload::FlushReady { addr } => {
                    entry.addr = Some(addr);
                    entry.state = EntryState::Done;
                    entry.completed_at = Some(now);
                }
                ExecPayload::BranchResolved { next_pc, taken } => {
                    entry.resolved = true;
                    entry.actual_next = next_pc;
                    entry.mispredicted = next_pc != entry.predicted_next;
                    entry.state = EntryState::Done;
                    entry.completed_at = Some(now);
                    let pc = entry.pc;
                    let mispredicted = entry.mispredicted;
                    self.predictor.update(pc, taken, next_pc, mispredicted);
                }
            }
        }
        self.wb_queue.drain(..idx);
    }

    // ------------------------------------------------------------------
    // Phase 6: squash
    // ------------------------------------------------------------------

    fn handle_squash(&mut self, now: u64, ctx: &mut TickCtx<'_>) {
        let branch = self
            .rob
            .iter()
            .find(|e| e.mispredicted && e.resolved && !e.squash_handled)
            .map(|e| (e.seq, e.actual_next));
        let Some((branch_seq, target)) = branch else {
            return;
        };
        let (checkpoint, branch_dispatched_at) = {
            let entry = self.rob.get_mut(branch_seq).expect("exists");
            entry.squash_handled = true;
            (
                entry
                    .rat_checkpoint
                    .clone()
                    .expect("branches checkpoint the RAT at dispatch"),
                entry.dispatched_at,
            )
        };
        let removed = self.rob.squash_after(branch_seq);
        self.rat = checkpoint;
        // Resolve checkpoint references to producers that retired after the
        // checkpoint was taken: a missing ROB entry here can only mean
        // "retired" (an older squash removing it would have removed this
        // branch too), and no post-branch writer can have retired before
        // this branch resolved, so the architectural register still holds
        // exactly that producer's result.
        for (reg, tag) in self.rat.iter_mut().enumerate() {
            if let RegTag::Rob(seq) = *tag {
                if self.rob.position(seq).is_none() {
                    *tag = RegTag::Value(self.arch_regs[reg]);
                }
            }
        }
        self.rs.squash_after(branch_seq);
        self.pending_loads.retain(|s| *s <= branch_seq);
        self.load_completions.retain(|c| c.seq <= branch_seq);
        self.wb_queue.retain(|(s, _)| *s <= branch_seq);
        let mut spec_fills = Vec::new();
        for e in &removed {
            self.mshrs.remove_target(e.seq);
            if let Some(line) = e.spec_fill_line {
                spec_fills.push(line);
            }
        }
        self.scheme.on_squash(ctx.hierarchy, self.id, &spec_fills);
        if self.scheme.protects_ifetch() {
            // Shadow-I-cache / filter-cache semantics: wrong-path
            // instruction fills are undone. Every line fetched after the
            // mispredicted branch entered the ROB is on the wrong path.
            let mut kept = Vec::new();
            for (cycle, line) in std::mem::take(&mut self.spec_ifetch_fills) {
                if cycle >= branch_dispatched_at {
                    ctx.hierarchy.flush_addr(line * si_cache::LINE_BYTES);
                } else {
                    kept.push((cycle, line));
                }
            }
            self.spec_ifetch_fills = kept;
        }
        self.frontend.redirect(target, now);
        self.stats.squashes += 1;
        self.stats.squashed_instrs += removed.len() as u64;
        self.trace.record(
            now,
            TraceEvent::Squash {
                branch_seq,
                squashed: removed.len(),
            },
        );
    }

    // ------------------------------------------------------------------
    // Phase 7: safe promotion (delayed loads, deferred exposures)
    // ------------------------------------------------------------------

    fn promote_safe(&mut self, now: u64, ctx: &mut TickCtx<'_>) {
        if !self
            .rob
            .iter()
            .any(|e| e.delayed || e.pending_safe_action.is_some())
        {
            return; // nothing deferred: skip the snapshot entirely
        }
        let view = self.make_view();
        let mut seqs = std::mem::take(&mut self.seq_scratch);
        seqs.clear();
        seqs.extend(self.rob.iter().map(|e| e.seq));
        for &seq in &seqs {
            let pos = view.position_of(seq).expect("just listed");
            let entry = self.rob.get(seq).expect("just listed");
            let delayed = entry.delayed;
            let pending = entry.pending_safe_action;
            let done = entry.state == EntryState::Done;
            if (delayed || pending.is_some()) && self.scheme.is_safe(&view, pos) {
                if delayed {
                    let e = self.rob.get_mut(seq).expect("exists");
                    e.delayed = false; // re-issues visibly next LSU pass
                }
                if let Some(action) = pending {
                    if done {
                        let entry = self.rob.get(seq).expect("exists").clone();
                        self.apply_safe_action(now, ctx, &entry, action);
                        self.rob.get_mut(seq).expect("exists").pending_safe_action = None;
                    }
                }
            }
        }
        self.seq_scratch = seqs;
        self.recycle_view(view);
    }

    fn apply_safe_action(
        &mut self,
        now: u64,
        ctx: &mut TickCtx<'_>,
        entry: &RobEntry,
        action: SafeAction,
    ) {
        let addr = entry.addr.expect("loads with safe actions have addresses");
        match action {
            SafeAction::TouchReplacement => {
                ctx.hierarchy.touch(now, self.id, addr, AccessClass::Data);
            }
            SafeAction::Expose => {
                ctx.hierarchy.promote(now, self.id, addr, AccessClass::Data);
            }
        }
        self.stats.exposures += 1;
    }

    // ------------------------------------------------------------------
    // Phase 8: dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, now: u64) {
        for _ in 0..self.config.dispatch_width {
            let Some(next) = self.frontend.peek() else {
                return;
            };
            if self.rob.is_full() {
                self.stats.rob_full_stalls += 1;
                return;
            }
            let class = next.instr.opcode.fu_class();
            if class != FuClass::None && self.rs.is_full() {
                self.stats.rs_full_stalls += 1;
                return;
            }
            let fetched = self.frontend.pop().expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut entry = RobEntry::new(seq, fetched.pc, fetched.instr, now);
            entry.predicted_next = fetched.predicted_next;
            match fetched.instr.opcode {
                Opcode::Branch => {
                    entry.rat_checkpoint = Some(self.rat.clone());
                }
                Opcode::Jump => {
                    entry.resolved = true;
                    entry.actual_next = fetched.instr.target().expect("jump target");
                    entry.state = EntryState::Done;
                }
                Opcode::Nop | Opcode::Fence | Opcode::Halt => {
                    entry.state = EntryState::Done;
                }
                Opcode::MovImm => {
                    entry.state = EntryState::Done;
                    entry.result = Some(fetched.instr.imm as u64);
                }
                Opcode::Rdtsc => {
                    entry.state = EntryState::Done;
                    entry.result = Some(now);
                }
                _ => {}
            }
            if class != FuClass::None {
                let operands = fetched
                    .instr
                    .reads()
                    .into_iter()
                    .map(|r| self.resolve_operand(r))
                    .collect();
                self.rs.insert(RsEntry {
                    seq,
                    fu: class,
                    operands,
                    issued: false,
                });
            }
            if let Some(dst) = fetched.instr.writes() {
                self.rat[dst.index()] = RegTag::Rob(seq);
            }
            self.trace.record(
                now,
                TraceEvent::Dispatch {
                    seq,
                    pc: fetched.pc,
                },
            );
            self.rob.push(entry);
            self.stats.dispatched += 1;
        }
    }

    fn resolve_operand(&self, r: Reg) -> Operand {
        if r.is_zero() {
            return Operand::Ready(0);
        }
        match self.rat[r.index()] {
            RegTag::Value(v) => Operand::Ready(v),
            RegTag::Rob(seq) => match self.rob.get(seq) {
                Some(e) if e.state == EntryState::Done => {
                    Operand::Ready(e.result.expect("done writers have results"))
                }
                _ => Operand::Waiting(seq),
            },
        }
    }

    // ------------------------------------------------------------------
    // Phase 9: fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self, now: u64, ctx: &mut TickCtx<'_>) {
        let outcome = self.frontend.tick(
            now,
            self.id,
            &self.program,
            ctx.hierarchy,
            &mut self.predictor,
            &mut self.trace,
        );
        match outcome {
            FetchOutcome::StalledICache => self.stats.fetch_stall_icache += 1,
            FetchOutcome::StalledQueueFull => self.stats.fetch_stall_queue += 1,
            FetchOutcome::Fetched(_) | FetchOutcome::Stopped => {}
        }
        let fills = self.frontend.take_ifetch_fills();
        if self.scheme.protects_ifetch() {
            self.spec_ifetch_fills.extend(fills);
            // Fills become architectural once no branch is unresolved.
            if !self.rob.iter().any(|e| e.is_branch() && !e.resolved) {
                self.spec_ifetch_fills.clear();
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadStep {
    Done,
    Retry,
    Squashed,
}
