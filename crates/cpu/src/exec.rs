//! Execution ports and in-flight operations.
//!
//! Ports host functional-unit classes per [`FuTable`](crate::FuTable). A
//! **pipelined** class accepts one operation per cycle per port; a
//! **non-pipelined** class occupies its port for the operation's full
//! latency — the property the `G^D_NPEU` gadget exploits (§3.2.2): a
//! mis-speculated `Sqrt` on port 0 blocks an older, retirement-bound
//! `Sqrt` from issuing.
//!
//! Squashed operations do **not** free their unit early: as on real
//! hardware, a bound-to-squash operation keeps crunching until it
//! completes (making units squashable is one of the §5.4 defense options,
//! not baseline behaviour). Results of squashed operations are dropped at
//! writeback.

use si_isa::FuClass;

use crate::config::FuTable;

/// What an in-flight operation delivers at completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPayload {
    /// A register result.
    Value(u64),
    /// A load's generated address (the data access happens next, in the
    /// load-store unit).
    AddrReady {
        /// Effective address.
        addr: u64,
    },
    /// A store's address and data.
    StoreReady {
        /// Effective address.
        addr: u64,
        /// Value to write at retirement.
        value: u64,
    },
    /// A flush's address.
    FlushReady {
        /// Effective address.
        addr: u64,
    },
    /// A resolved conditional branch.
    BranchResolved {
        /// Actual next PC.
        next_pc: u64,
        /// Whether the branch was taken.
        taken: bool,
    },
}

/// One operation in flight through an execution unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// The instruction's sequence number.
    pub seq: u64,
    /// Completion cycle.
    pub done_at: u64,
    /// Executing port.
    pub port: usize,
    /// Whether the occupying class is non-pipelined (port held to
    /// `done_at`).
    pub non_pipelined: bool,
    /// Result delivered at completion.
    pub payload: ExecPayload,
}

/// The pool of execution ports plus in-flight operations.
#[derive(Debug, Clone)]
pub struct ExecUnits {
    busy_until: Vec<u64>,
    issued_this_cycle: Vec<bool>,
    in_flight: Vec<InFlight>,
    /// Operations issued per port over the unit's lifetime — the per-port
    /// contention profile the interference attacks skew (a mis-speculated
    /// sqrt chain shows up as excess port-0 issues).
    issues_per_port: Vec<u64>,
}

impl ExecUnits {
    /// Creates execution units covering every port in `fu`.
    pub fn new(fu: &FuTable) -> ExecUnits {
        let ports = fu.max_port() + 1;
        ExecUnits {
            busy_until: vec![0; ports],
            issued_this_cycle: vec![false; ports],
            in_flight: Vec::new(),
            issues_per_port: vec![0; ports],
        }
    }

    /// Call at the start of each cycle to reset per-cycle issue slots.
    pub fn begin_cycle(&mut self) {
        self.issued_this_cycle.iter_mut().for_each(|b| *b = false);
    }

    /// Finds a port of `class` that can accept an issue at `now`, if any.
    pub fn free_port(&self, fu: &FuTable, class: FuClass, now: u64) -> Option<usize> {
        fu.timing(class)
            .ports
            .iter()
            .copied()
            .find(|p| self.busy_until[*p] <= now && !self.issued_this_cycle[*p])
    }

    /// Issues an operation to `port` at `now`, delivering `payload` after
    /// the class latency. Returns the completion cycle.
    pub fn issue(
        &mut self,
        fu: &FuTable,
        class: FuClass,
        port: usize,
        seq: u64,
        now: u64,
        payload: ExecPayload,
    ) -> u64 {
        let t = fu.timing(class);
        debug_assert!(t.ports.contains(&port), "issue to a port hosting {class:?}");
        debug_assert!(self.busy_until[port] <= now, "issue to a busy port");
        let done_at = now + t.latency;
        self.issued_this_cycle[port] = true;
        self.issues_per_port[port] += 1;
        if !t.pipelined {
            self.busy_until[port] = done_at;
        }
        self.in_flight.push(InFlight {
            seq,
            done_at,
            port,
            non_pipelined: !t.pipelined,
            payload,
        });
        done_at
    }

    /// Removes and returns every operation completing at or before `now`,
    /// oldest sequence first.
    pub fn collect_done(&mut self, now: u64) -> Vec<InFlight> {
        let mut done: Vec<InFlight> = Vec::new();
        self.drain_done_into(now, &mut done);
        done
    }

    /// [`collect_done`](ExecUnits::collect_done) into a caller-owned
    /// buffer (cleared first), so the per-cycle completion sweep reuses
    /// one allocation.
    pub fn drain_done_into(&mut self, now: u64, done: &mut Vec<InFlight>) {
        done.clear();
        self.in_flight.retain(|op| {
            if op.done_at <= now {
                done.push(*op);
                false
            } else {
                true
            }
        });
        done.sort_by_key(|op| op.seq);
    }

    /// Earliest completion cycle among in-flight operations.
    pub fn next_done_at(&self) -> Option<u64> {
        self.in_flight.iter().map(|op| op.done_at).min()
    }

    /// Extends the port reservation of a completed-but-held non-pipelined
    /// operation (§5.4 resource-holding defense).
    pub fn hold_port(&mut self, port: usize, until: u64) {
        self.busy_until[port] = self.busy_until[port].max(until);
    }

    /// Whether any operation is still in flight.
    pub fn idle(&self, now: u64) -> bool {
        self.in_flight.is_empty() && self.busy_until.iter().all(|b| *b <= now)
    }

    /// Number of operations in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Lifetime issue count per port (index = port number).
    pub fn issues_per_port(&self) -> &[u64] {
        &self.issues_per_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fu() -> FuTable {
        FuTable::default()
    }

    #[test]
    fn pipelined_port_accepts_one_issue_per_cycle() {
        let fu = fu();
        let mut eu = ExecUnits::new(&fu);
        eu.begin_cycle();
        let p = eu.free_port(&fu, FuClass::IntMul, 0).unwrap();
        eu.issue(&fu, FuClass::IntMul, p, 0, 0, ExecPayload::Value(1));
        assert!(
            eu.free_port(&fu, FuClass::IntMul, 0).is_none(),
            "port 1 already issued this cycle"
        );
        eu.begin_cycle();
        assert!(
            eu.free_port(&fu, FuClass::IntMul, 1).is_some(),
            "pipelined port takes a new op next cycle"
        );
    }

    #[test]
    fn non_pipelined_port_blocks_for_full_latency() {
        let fu = fu();
        let mut eu = ExecUnits::new(&fu);
        eu.begin_cycle();
        let p = eu.free_port(&fu, FuClass::FpSqrt, 0).unwrap();
        assert_eq!(p, 0);
        let done = eu.issue(&fu, FuClass::FpSqrt, p, 0, 0, ExecPayload::Value(1));
        assert_eq!(done, 15);
        for cycle in 1..15 {
            eu.begin_cycle();
            assert!(
                eu.free_port(&fu, FuClass::FpSqrt, cycle).is_none(),
                "port 0 busy at cycle {cycle}"
            );
        }
        eu.begin_cycle();
        assert!(eu.free_port(&fu, FuClass::FpSqrt, 15).is_some());
    }

    #[test]
    fn sqrt_blocks_alu_sharing_its_port_but_not_other_alu_ports() {
        let fu = fu();
        let mut eu = ExecUnits::new(&fu);
        eu.begin_cycle();
        eu.issue(&fu, FuClass::FpSqrt, 0, 0, 0, ExecPayload::Value(1));
        eu.begin_cycle();
        // ALU lives on ports {0,1,4,5}; port 0 is held by the sqrt.
        let p = eu.free_port(&fu, FuClass::IntAlu, 1).unwrap();
        assert_ne!(p, 0);
    }

    #[test]
    fn collect_done_returns_completions_in_age_order() {
        let fu = fu();
        let mut eu = ExecUnits::new(&fu);
        eu.begin_cycle();
        eu.issue(&fu, FuClass::IntAlu, 1, 9, 0, ExecPayload::Value(9));
        eu.issue(&fu, FuClass::IntAlu, 0, 3, 0, ExecPayload::Value(3));
        assert!(eu.collect_done(0).is_empty());
        let done = eu.collect_done(1);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].seq, 3);
        assert_eq!(done[1].seq, 9);
        assert!(eu.idle(1));
    }

    #[test]
    fn hold_port_extends_reservation() {
        let fu = fu();
        let mut eu = ExecUnits::new(&fu);
        eu.begin_cycle();
        eu.issue(&fu, FuClass::FpSqrt, 0, 0, 0, ExecPayload::Value(1));
        eu.collect_done(15);
        eu.hold_port(0, 20);
        eu.begin_cycle();
        assert!(eu.free_port(&fu, FuClass::FpSqrt, 15).is_none());
        assert!(eu.free_port(&fu, FuClass::FpSqrt, 20).is_some());
    }
}
