//! A deterministic, cycle-level out-of-order core and multi-core machine.
//!
//! This crate is the pipeline substrate of the speculative-interference
//! reproduction: a dynamically scheduled core (§2.3) whose *unmodified*
//! scheduling behaviour is what the paper attacks. The mechanisms the
//! attacks rely on are modeled explicitly:
//!
//! * readiness-then-age ordered issue into execution ports, with
//!   **non-pipelined** units that block their port (`G^D_NPEU`);
//! * L1D **MSHRs** allocated in issue order (`G^D_MSHR`);
//! * a unified **reservation station** whose exhaustion stalls dispatch and
//!   back-throttles fetch (`G^I_RS`);
//! * a common data bus with bounded writeback bandwidth;
//! * a trainable branch predictor, delayed branch resolution, and precise
//!   squash/recovery;
//! * pluggable [`SpeculationScheme`]s controlling what speculative loads
//!   may do to the cache hierarchy (implementations live in `si-schemes`).
//!
//! # Example
//!
//! ```
//! use si_cpu::{Machine, MachineConfig};
//! use si_isa::{Assembler, R1, R2, R3};
//!
//! let mut asm = Assembler::new(0);
//! asm.mov_imm(R1, 6);
//! asm.mov_imm(R2, 7);
//! asm.mul(R3, R1, R2);
//! asm.halt();
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.load_program(0, &asm.assemble()?);
//! machine.run_core_to_halt(0, 10_000)?;
//! assert_eq!(machine.core(0).reg(R3), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkpoint;
mod config;
mod core;
mod exec;
mod frontend;
mod machine;
mod memory;
mod predictor;
mod preset;
mod rob;
mod rs;
mod scheme;
mod stats;
mod tage;
mod trace;

pub use si_cache::MshrFile;

pub use checkpoint::MachineCheckpoint;
pub use config::{CoreConfig, FuTable, FuTiming, MachineConfig, NoiseConfig};
pub use core::{Core, TickCtx};
pub use exec::{ExecPayload, ExecUnits, InFlight};
pub use frontend::{FetchOutcome, FetchedInstr, Frontend};
pub use machine::{AgentOp, AgentTiming, Machine, Timeout};
pub use memory::Memory;
pub use predictor::{BranchPredictor, Prediction, Predictor, PredictorKind};
pub use preset::{GeometryPreset, NoisePreset, PredictorPreset};
pub use rob::{fresh_rat, EntryState, Rat, RegTag, Rob, RobEntry};
pub use rs::{Operand, OperandList, ReservationStation, RsEntry};
pub use scheme::{
    LoadPlan, SafeAction, SafetyFlags, SafetyView, SpeculationScheme, Unprotected, UnsafeLoadCtx,
};
pub use stats::CoreStats;
pub use tage::TagePredictor;
pub use trace::{StallReason, Trace, TraceEvent};
