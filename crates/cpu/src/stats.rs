//! Per-core pipeline statistics.

use std::fmt;

/// Counters accumulated by one core over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoreStats {
    /// Cycles the core was ticked.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions dispatched into the ROB.
    pub dispatched: u64,
    /// Instructions issued to execution units.
    pub issued: u64,
    /// Mispredicted branches squashed.
    pub squashes: u64,
    /// Instructions thrown away by squashes.
    pub squashed_instrs: u64,
    /// Cycles fetch stalled on an I-cache fill.
    pub fetch_stall_icache: u64,
    /// Cycles fetch stalled on a full decode queue (`G^I_RS` back-pressure).
    pub fetch_stall_queue: u64,
    /// Dispatch stalls due to a full reservation station.
    pub rs_full_stalls: u64,
    /// Dispatch stalls due to a full ROB.
    pub rob_full_stalls: u64,
    /// Load retries due to MSHR exhaustion (`G^D_MSHR` pressure).
    pub mshr_stalls: u64,
    /// Loads delayed by the speculation scheme (Delay-on-Miss path).
    pub delayed_loads: u64,
    /// Loads executed invisibly.
    pub invisible_loads: u64,
    /// Deferred safe-actions applied (touches + exposures).
    pub exposures: u64,
    /// Issue stalls imposed by a defense's `blocks_issue` (§5.2 fences).
    pub defense_issue_stalls: u64,
    /// Ready instructions that could not issue because every port hosting
    /// their unit class was busy (`G^D_NPEU` port pressure): one count per
    /// ready-but-portless candidate per cycle.
    pub port_contention_stalls: u64,
}

impl CoreStats {
    /// Retired instructions per cycle; 0 when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for CoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} retired (IPC {:.2}), {} squashes ({} instrs), \
             stalls[icache={} queue={} rs={} rob={} mshr={} defense={} port={}], \
             loads[delayed={} invisible={} exposures={}]",
            self.cycles,
            self.retired,
            self.ipc(),
            self.squashes,
            self.squashed_instrs,
            self.fetch_stall_icache,
            self.fetch_stall_queue,
            self.rs_full_stalls,
            self.rob_full_stalls,
            self.mshr_stalls,
            self.defense_issue_stalls,
            self.port_contention_stalls,
            self.delayed_loads,
            self.invisible_loads,
            self.exposures,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_math() {
        let s = CoreStats {
            cycles: 100,
            retired: 250,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(CoreStats::default().to_string().contains("IPC"));
    }
}
