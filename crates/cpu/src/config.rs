//! Core and machine configuration.

use si_cache::HierarchyConfig;
use si_isa::FuClass;

use crate::predictor::PredictorKind;

/// Timing and placement of one functional-unit class.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FuTiming {
    /// Execution latency in cycles (for loads: address generation only —
    /// the cache access is added by the memory system).
    pub latency: u64,
    /// Whether the unit accepts a new operation every cycle. The paper's
    /// `G^D_NPEU` gadget (§3.2.2) requires a **non-pipelined** unit: an
    /// issued operation blocks the port for its full latency.
    pub pipelined: bool,
    /// Execution ports that host this class.
    pub ports: Vec<usize>,
}

/// Per-class functional-unit table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FuTable {
    /// Single-cycle integer ALU.
    pub int_alu: FuTiming,
    /// Pipelined multiplier.
    pub int_mul: FuTiming,
    /// Non-pipelined square root (`VSQRTPD` analog: §4.2.1 reports 15–16
    /// cycle latency and ~9–12 cycle reciprocal throughput on one port).
    pub fp_sqrt: FuTiming,
    /// Non-pipelined divider (`VDIVPD` analog).
    pub fp_div: FuTiming,
    /// Load pipe (AGU latency; the cache adds the rest).
    pub load: FuTiming,
    /// Store pipe (AGU latency; the write happens at retire).
    pub store: FuTiming,
    /// Branch resolution.
    pub branch: FuTiming,
}

impl FuTable {
    /// Returns the timing record for `class`.
    ///
    /// # Panics
    ///
    /// Panics for [`FuClass::None`], which never reaches an execution unit.
    pub fn timing(&self, class: FuClass) -> &FuTiming {
        match class {
            FuClass::IntAlu => &self.int_alu,
            FuClass::IntMul => &self.int_mul,
            FuClass::FpSqrt => &self.fp_sqrt,
            FuClass::FpDiv => &self.fp_div,
            FuClass::Load => &self.load,
            FuClass::Store => &self.store,
            FuClass::Branch => &self.branch,
            FuClass::None => panic!("FuClass::None has no execution unit"),
        }
    }

    /// Highest port index referenced by any class.
    pub fn max_port(&self) -> usize {
        [
            &self.int_alu,
            &self.int_mul,
            &self.fp_sqrt,
            &self.fp_div,
            &self.load,
            &self.store,
            &self.branch,
        ]
        .iter()
        .flat_map(|t| t.ports.iter().copied())
        .max()
        .unwrap_or(0)
    }
}

impl Default for FuTable {
    /// Kaby-Lake-flavoured defaults (§4.1): six ports; ALU on four of
    /// them; `Sqrt`/`Div` non-pipelined on port 0; `Mul` pipelined on
    /// port 1; one load pipe, one store pipe; branches on port 4.
    fn default() -> FuTable {
        FuTable {
            int_alu: FuTiming {
                latency: 1,
                pipelined: true,
                ports: vec![0, 1, 4, 5],
            },
            int_mul: FuTiming {
                latency: 3,
                pipelined: true,
                ports: vec![1],
            },
            fp_sqrt: FuTiming {
                latency: 15,
                pipelined: false,
                ports: vec![0],
            },
            fp_div: FuTiming {
                latency: 20,
                pipelined: false,
                ports: vec![0],
            },
            load: FuTiming {
                latency: 1,
                pipelined: true,
                ports: vec![2],
            },
            store: FuTiming {
                latency: 1,
                pipelined: true,
                ports: vec![3],
            },
            branch: FuTiming {
                latency: 1,
                pipelined: true,
                ports: vec![4],
            },
        }
    }
}

/// Out-of-order core configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Capacity of the post-fetch decode queue; when it fills, fetch
    /// stalls — the back-pressure path of the `G^I_RS` gadget (§3.2.2).
    pub decode_queue: usize,
    /// Instructions dispatched (renamed + inserted into ROB/RS) per cycle.
    pub dispatch_width: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Unified reservation-station capacity (the paper's target has 97;
    /// §4.1).
    pub rs_size: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Common-data-bus (writeback) slots per cycle.
    pub cdb_width: usize,
    /// L1D miss-status-holding registers (the `G^D_MSHR` resource).
    pub mshrs: usize,
    /// Functional-unit table.
    pub fu: FuTable,
    /// Branch-predictor counter-table size (entries; power of two). For
    /// [`PredictorKind::Tage`] this sizes the base bimodal table; the
    /// tagged banks have fixed geometry.
    pub predictor_entries: usize,
    /// Branch-predictor organization (bimodal table or TAGE).
    pub predictor_kind: PredictorKind,
    /// When set, the frontend never speculates past a conditional branch:
    /// fetch stalls until the branch resolves. This produces the paper's
    /// `NoSpec(E)` reference execution (§5.1) — out-of-order execution with
    /// zero mis-speculation — used by the ideal-invisible-speculation
    /// checker.
    pub no_speculation: bool,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            decode_queue: 24,
            dispatch_width: 4,
            rob_size: 128,
            rs_size: 48,
            retire_width: 4,
            cdb_width: 4,
            mshrs: 8,
            fu: FuTable::default(),
            predictor_entries: 1024,
            predictor_kind: PredictorKind::Bimodal,
            no_speculation: false,
        }
    }
}

impl CoreConfig {
    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0
            || self.dispatch_width == 0
            || self.retire_width == 0
            || self.cdb_width == 0
        {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.rob_size == 0 || self.rs_size == 0 || self.decode_queue == 0 {
            return Err("queue capacities must be non-zero".into());
        }
        if self.mshrs == 0 {
            return Err("need at least one MSHR".into());
        }
        if !self.predictor_entries.is_power_of_two() {
            return Err("predictor entries must be a power of two".into());
        }
        Ok(())
    }
}

/// Noise injection for covert-channel evaluation (Figure 11).
///
/// Real machines impose timing noise that the simulator lacks; these knobs
/// reintroduce it in controlled, seeded form (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NoiseConfig {
    /// Maximum extra cycles added to each DRAM access (uniform in
    /// `0..=dram_jitter`).
    pub dram_jitter: u64,
    /// If non-zero, a background agent issues one random visible LLC access
    /// every `background_period` cycles from the last core.
    pub background_period: u64,
    /// Number of distinct lines the background agent cycles through.
    pub background_lines: u64,
    /// When set, each background event is a *conflict burst*: the agent
    /// walks associativity+1 lines of one random LLC set, evicting a whole
    /// set's worth of state — a streaming co-tenant whose working set
    /// collides with the victim's. This is the noise mode that perturbs
    /// presence-based (Flush+Reload) receivers, whose monitored sets are
    /// otherwise never full.
    pub burst_sets: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> NoiseConfig {
        NoiseConfig {
            dram_jitter: 0,
            background_period: 0,
            background_lines: 4096,
            burst_sets: false,
            seed: 0x5eed,
        }
    }
}

/// Whole-machine configuration: identical cores over a shared hierarchy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MachineConfig {
    /// Per-core pipeline configuration.
    pub core: CoreConfig,
    /// Cache hierarchy (also fixes the number of cores).
    pub hierarchy: HierarchyConfig,
    /// Optional noise injection.
    pub noise: NoiseConfig,
    /// Debug/test knob: force [`Machine::advance`](crate::Machine::advance)
    /// to tick cycle-by-cycle instead of skipping idle-cycle runs. Results
    /// are bit-identical either way (the equivalence tests drive both
    /// modes); skipping is only a wall-clock optimization.
    pub disable_idle_skip: bool,
    /// Debug/differential knob: forbid checkpoint/fork trial execution
    /// (`--no-checkpoint`), forcing every trial to re-simulate its full
    /// setup. Results are bit-identical either way — the checkpoint layer
    /// is a wall-clock optimization — but the flag is part of the config,
    /// so [`MachineConfig::fingerprint`](crate::preset) (and with it every
    /// engine unit address) distinguishes the two execution paths: cached
    /// results from one path are never served to the other.
    pub disable_checkpoint: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            core: CoreConfig::default(),
            hierarchy: HierarchyConfig::kaby_lake_like(2),
            noise: NoiseConfig::default(),
            disable_idle_skip: false,
            disable_checkpoint: false,
        }
    }
}

impl MachineConfig {
    /// Validates the combined configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()?;
        self.hierarchy.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        MachineConfig::default().validate().unwrap();
    }

    #[test]
    fn sqrt_is_non_pipelined_on_port_zero() {
        let fu = FuTable::default();
        let sqrt = fu.timing(FuClass::FpSqrt);
        assert!(!sqrt.pipelined);
        assert_eq!(sqrt.ports, vec![0]);
        assert_eq!(sqrt.latency, 15);
    }

    #[test]
    fn alu_issue_bandwidth_matches_dispatch_width() {
        // The G^I_RS hit case needs independent ALU ops to drain at least
        // as fast as they dispatch (see DESIGN.md).
        let c = CoreConfig::default();
        assert!(c.fu.int_alu.ports.len() >= c.dispatch_width);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let broken = [
            CoreConfig {
                cdb_width: 0,
                ..CoreConfig::default()
            },
            CoreConfig {
                mshrs: 0,
                ..CoreConfig::default()
            },
            CoreConfig {
                predictor_entries: 1000,
                ..CoreConfig::default()
            },
        ];
        for c in broken {
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn max_port_covers_all_classes() {
        assert_eq!(FuTable::default().max_port(), 5);
    }

    #[test]
    #[should_panic(expected = "no execution unit")]
    fn none_class_has_no_timing() {
        FuTable::default().timing(FuClass::None);
    }
}
