//! Branch prediction: per-PC 2-bit counters plus a branch target buffer.
//!
//! The paper's attacks *mis-train* this structure (§4.1: "we trigger branch
//! mispredictions by training the target branch in a given direction"). A
//! victim loop executing the branch taken N times drives its counter to
//! strongly-taken, so the attack iteration's not-taken outcome mispredicts
//! and opens the transient window:
//!
//! ```
//! use si_cpu::BranchPredictor;
//!
//! let mut p = BranchPredictor::new(1024);
//! // §4.1 mistraining: resolve the victim branch taken twice, driving
//! // its 2-bit counter from weakly-not-taken to strongly-taken.
//! p.update(0x68, true, 0x50, false);
//! p.update(0x68, true, 0x50, false);
//! // The attack iteration now predicts taken — the actual not-taken
//! // outcome will squash, and the transient window is open.
//! assert!(p.predict(0x68, 0x50).taken);
//! ```
//!
//! The per-PC table is the `p64`/`p1k`/`p8k` preset family; the `tage`
//! preset swaps in the history-correlated [`TagePredictor`], which this
//! module dispatches over via [`Predictor`]. Larger tables reduce
//! *aliasing* (two branches sharing a counter), not mistraining — the
//! §4.1 pattern above works at any size because attacker and victim
//! train the *same* PC.

use std::collections::HashMap;

use crate::tage::TagePredictor;

/// A direction prediction and its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted taken?
    pub taken: bool,
    /// Predicted target address (meaningful when `taken`).
    pub target: u64,
}

/// Per-PC 2-bit saturating counters with a BTB.
///
/// Counters start at 1 (weakly not-taken). The BTB records the last
/// resolved taken-target per branch PC; a branch predicted taken without a
/// BTB entry falls back to its (statically known) encoded target, which is
/// exact for this ISA's direct branches.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    btb: HashMap<u64, u64>,
    mask: u64,
    predicts: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> BranchPredictor {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        BranchPredictor {
            counters: vec![1; entries],
            btb: HashMap::new(),
            mask: entries as u64 - 1,
            predicts: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 3) & self.mask) as usize
    }

    /// Predicts the branch at `pc` whose statically encoded target is
    /// `static_target`.
    pub fn predict(&mut self, pc: u64, static_target: u64) -> Prediction {
        self.predicts += 1;
        let taken = self.counters[self.index(pc)] >= 2;
        let target = *self.btb.get(&pc).unwrap_or(&static_target);
        Prediction { taken, target }
    }

    /// Trains on a resolved branch outcome.
    pub fn update(&mut self, pc: u64, taken: bool, target: u64, mispredicted: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
            self.btb.insert(pc, target);
        } else {
            *c = c.saturating_sub(1);
        }
        if mispredicted {
            self.mispredicts += 1;
        }
    }

    /// `(predictions, mispredictions)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.predicts, self.mispredicts)
    }
}

/// Which predictor organization a core builds — the
/// [`CoreConfig::predictor_kind`](crate::CoreConfig) axis behind the
/// `predictor=` slug of sweep grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PredictorKind {
    /// Per-PC 2-bit counters ([`BranchPredictor`]) — the original toy
    /// frontend; `p64`/`p1k`/`p8k` presets vary only its table size.
    Bimodal,
    /// Tagged geometric-history predictor
    /// ([`TagePredictor`](crate::TagePredictor)) — the realistic
    /// frontend of the `tage` preset.
    Tage,
}

/// Runtime dispatch over the predictor organizations. The frontend and
/// writeback stages talk to this enum, so both predictors see the exact
/// same predict/update call stream.
#[derive(Debug, Clone)]
pub enum Predictor {
    /// Per-PC bimodal table.
    Bimodal(BranchPredictor),
    /// Tagged geometric-history predictor (boxed: its tables dwarf the
    /// bimodal variant, and cores clone/move `Predictor` by value).
    Tage(Box<TagePredictor>),
}

impl Predictor {
    /// Builds the predictor `kind` names; `entries` sizes the (base)
    /// counter table of either organization.
    pub fn new(kind: PredictorKind, entries: usize) -> Predictor {
        match kind {
            PredictorKind::Bimodal => Predictor::Bimodal(BranchPredictor::new(entries)),
            PredictorKind::Tage => Predictor::Tage(Box::new(TagePredictor::new(entries))),
        }
    }

    /// Predicts the branch at `pc` whose statically encoded target is
    /// `static_target`.
    pub fn predict(&mut self, pc: u64, static_target: u64) -> Prediction {
        match self {
            Predictor::Bimodal(p) => p.predict(pc, static_target),
            Predictor::Tage(p) => p.predict(pc, static_target),
        }
    }

    /// Trains on a resolved branch outcome.
    pub fn update(&mut self, pc: u64, taken: bool, target: u64, mispredicted: bool) {
        match self {
            Predictor::Bimodal(p) => p.update(pc, taken, target, mispredicted),
            Predictor::Tage(p) => p.update(pc, taken, target, mispredicted),
        }
    }

    /// `(predictions, mispredictions)` counters.
    pub fn stats(&self) -> (u64, u64) {
        match self {
            Predictor::Bimodal(p) => p.stats(),
            Predictor::Tage(p) => p.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_weakly_not_taken() {
        let mut p = BranchPredictor::new(16);
        assert!(!p.predict(0x40, 0x100).taken);
    }

    #[test]
    fn training_flips_direction() {
        let mut p = BranchPredictor::new(16);
        p.update(0x40, true, 0x100, false);
        assert!(p.predict(0x40, 0x100).taken); // counter 1 -> 2
        p.update(0x40, true, 0x100, false); // -> 3 (saturates)
        p.update(0x40, false, 0, false); // -> 2, still taken
        assert!(p.predict(0x40, 0x100).taken);
        p.update(0x40, false, 0, false); // -> 1
        assert!(!p.predict(0x40, 0x100).taken);
    }

    #[test]
    fn mistraining_reproduces_the_spectre_setup() {
        // Train taken N times; the attack iteration (actually not-taken)
        // is predicted taken — the transient window.
        let mut p = BranchPredictor::new(64);
        for _ in 0..8 {
            p.update(0x80, true, 0x200, false);
        }
        let pred = p.predict(0x80, 0x200);
        assert!(pred.taken);
        assert_eq!(pred.target, 0x200);
    }

    #[test]
    fn btb_overrides_static_target() {
        let mut p = BranchPredictor::new(16);
        p.update(0x40, true, 0xbeef, false);
        p.update(0x40, true, 0xbeef, false);
        assert_eq!(p.predict(0x40, 0x100).target, 0xbeef);
    }

    #[test]
    fn distinct_pcs_do_not_alias_in_small_ranges() {
        let mut p = BranchPredictor::new(1024);
        p.update(0x40, true, 1, false);
        p.update(0x40, true, 1, false);
        assert!(!p.predict(0x48, 2).taken, "neighbouring branch unaffected");
    }

    #[test]
    fn stats_count() {
        let mut p = BranchPredictor::new(16);
        p.predict(0, 0);
        p.update(0, true, 4, true);
        assert_eq!(p.stats(), (1, 1));
    }
}
