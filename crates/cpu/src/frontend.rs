//! The frontend: instruction fetch through the L1I, branch prediction, and
//! the decode queue.
//!
//! Fetch is where two of the paper's mechanisms live:
//!
//! * instruction fetches are **visible** cache accesses even on
//!   mis-speculated paths (InvisiSpec and DoM leave the I-cache
//!   unprotected, §3.2.2) — the `G^I_RS` attack's transmitter-to-receiver
//!   path;
//! * when the decode queue backs up (because dispatch stalls on a full
//!   RS/ROB), fetch stops — the back-throttling that makes the secret
//!   control *whether* a target line is ever fetched (Figure 5/10).

use std::collections::VecDeque;

use si_cache::{AccessClass, Hierarchy, Visibility};
use si_isa::{Instruction, Opcode, Program, INSTR_BYTES};

use crate::predictor::Predictor;
use crate::trace::{StallReason, Trace, TraceEvent};

/// A fetched instruction with its prediction metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInstr {
    /// Fetch address.
    pub pc: u64,
    /// The instruction.
    pub instr: Instruction,
    /// Predicted next PC (for branches; `pc + 8` otherwise).
    pub predicted_next: u64,
}

/// Fetch + decode-queue state for one core.
#[derive(Debug, Clone)]
pub struct Frontend {
    pc: u64,
    stalled_until: u64,
    stopped: bool,
    queue: VecDeque<FetchedInstr>,
    capacity: usize,
    fetch_width: usize,
    /// The I-cache line fetch is currently streaming from (avoids
    /// re-accessing the cache for every instruction on the same line).
    current_line: Option<u64>,
    /// `NoSpec(E)` mode: stop at conditional branches instead of
    /// predicting (§5.1 reference execution).
    no_speculation: bool,
    /// Instruction-line fills (`(cycle, line)`) that came from beyond the
    /// L1I — the record an I-cache-protecting scheme rolls back on squash.
    ifetch_fills: Vec<(u64, u64)>,
}

impl Frontend {
    /// Creates a frontend starting at `entry`.
    pub fn new(entry: u64, capacity: usize, fetch_width: usize) -> Frontend {
        Frontend {
            pc: entry,
            stalled_until: 0,
            stopped: false,
            queue: VecDeque::with_capacity(capacity),
            capacity,
            fetch_width,
            current_line: None,
            no_speculation: false,
            ifetch_fills: Vec::new(),
        }
    }

    /// Creates a non-speculating frontend (see
    /// [`CoreConfig::no_speculation`](crate::CoreConfig)): fetch stops at
    /// every conditional branch and resumes when the resolved branch
    /// redirects it.
    pub fn new_no_speculation(entry: u64, capacity: usize, fetch_width: usize) -> Frontend {
        Frontend {
            no_speculation: true,
            ..Frontend::new(entry, capacity, fetch_width)
        }
    }

    /// Current fetch PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether fetch has run past a `Halt` or off the end of code.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Number of queued instructions awaiting dispatch.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Peeks the next instruction awaiting dispatch.
    pub fn peek(&self) -> Option<&FetchedInstr> {
        self.queue.front()
    }

    /// Pops the next instruction for dispatch.
    pub fn pop(&mut self) -> Option<FetchedInstr> {
        self.queue.pop_front()
    }

    /// Takes the record of instruction-line fills that missed the L1I.
    pub fn take_ifetch_fills(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.ifetch_fills)
    }

    /// The cycle an in-progress I-cache stall ends (fetch resumes then).
    pub(crate) fn stall_deadline(&self) -> u64 {
        self.stalled_until
    }

    /// Classifies what [`Frontend::tick`] would do at `now` **without
    /// doing it** — same check order as `tick` (stopped, then stalled,
    /// then queue-full). Used by the idle-cycle skip to prove a fetch
    /// cycle is a pure stall and to replay its exact stall accounting.
    pub(crate) fn quiet_state(&self, now: u64) -> FrontendQuiet {
        if self.stopped {
            FrontendQuiet::Stopped
        } else if now < self.stalled_until {
            FrontendQuiet::Stalled
        } else if self.queue.len() >= self.capacity {
            FrontendQuiet::QueueFull
        } else {
            FrontendQuiet::Active
        }
    }

    /// Redirects fetch after a squash: clears the queue, restarts at
    /// `target`.
    pub fn redirect(&mut self, target: u64, now: u64) {
        self.queue.clear();
        self.pc = target;
        self.stopped = false;
        self.stalled_until = now;
        self.current_line = None;
    }

    /// Fetches up to `fetch_width` instructions this cycle.
    pub fn tick(
        &mut self,
        now: u64,
        core: usize,
        program: &Program,
        hierarchy: &mut Hierarchy,
        predictor: &mut Predictor,
        trace: &mut Trace,
    ) -> FetchOutcome {
        if self.stopped {
            return FetchOutcome::Stopped;
        }
        if now < self.stalled_until {
            trace.record(
                now,
                TraceEvent::FetchStall {
                    reason: StallReason::ICacheMiss,
                },
            );
            return FetchOutcome::StalledICache;
        }
        if self.queue.len() >= self.capacity {
            trace.record(
                now,
                TraceEvent::FetchStall {
                    reason: StallReason::QueueFull,
                },
            );
            return FetchOutcome::StalledQueueFull;
        }
        let mut fetched = 0;
        while fetched < self.fetch_width && self.queue.len() < self.capacity {
            let pc = self.pc;
            let line = pc / si_cache::LINE_BYTES;
            if self.current_line != Some(line) {
                let res =
                    hierarchy.read_demand(now, core, pc, AccessClass::Instr, Visibility::Visible);
                self.current_line = Some(line);
                if res.level != si_cache::HitLevel::L1 {
                    self.ifetch_fills.push((now, line));
                    // Line was not in the L1I: stall for the fill latency;
                    // the fill itself has already happened (visible).
                    self.stalled_until = now + res.latency;
                    trace.record(
                        now,
                        TraceEvent::FetchStall {
                            reason: StallReason::ICacheMiss,
                        },
                    );
                    return if fetched > 0 {
                        FetchOutcome::Fetched(fetched)
                    } else {
                        FetchOutcome::StalledICache
                    };
                }
            }
            let Some(instr) = program.fetch(pc).copied() else {
                self.stopped = true;
                trace.record(
                    now,
                    TraceEvent::FetchStall {
                        reason: StallReason::NoInstruction,
                    },
                );
                break;
            };
            trace.record(now, TraceEvent::Fetch { pc });
            let fallthrough = pc + INSTR_BYTES;
            let predicted_next = match instr.opcode {
                Opcode::Branch if self.no_speculation => {
                    // Sentinel next-PC: the resolution always "mispredicts",
                    // which reuses the squash path to redirect a stopped
                    // frontend with nothing younger to squash.
                    u64::MAX
                }
                Opcode::Branch => {
                    let pred = predictor.predict(pc, instr.target().expect("branch has target"));
                    if pred.taken {
                        pred.target
                    } else {
                        fallthrough
                    }
                }
                Opcode::Jump => instr.target().expect("jump has target"),
                _ => fallthrough,
            };
            if instr.opcode == Opcode::Branch && self.no_speculation {
                self.queue.push_back(FetchedInstr {
                    pc,
                    instr,
                    predicted_next,
                });
                fetched += 1;
                self.stopped = true; // resumes via redirect at resolution
                break;
            }
            self.queue.push_back(FetchedInstr {
                pc,
                instr,
                predicted_next,
            });
            fetched += 1;
            self.pc = predicted_next;
            if instr.opcode == Opcode::Halt {
                self.stopped = true;
                break;
            }
            // A predicted-taken control transfer ends the fetch group.
            if predicted_next != fallthrough {
                self.current_line = None;
                break;
            }
        }
        FetchOutcome::Fetched(fetched)
    }
}

/// What [`Frontend::tick`] would do this cycle (see
/// [`Frontend::quiet_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrontendQuiet {
    /// Fetch has stopped; a tick records nothing.
    Stopped,
    /// Stalled on an I-cache fill; a tick records one stall per cycle.
    Stalled,
    /// Decode queue full; a tick records one stall per cycle.
    QueueFull,
    /// Fetch would make progress (mutating state).
    Active,
}

/// What fetch accomplished in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Fetched this many instructions (possibly zero at a line boundary).
    Fetched(usize),
    /// Stalled waiting for an I-cache fill.
    StalledICache,
    /// Stalled because the decode queue is full.
    StalledQueueFull,
    /// Fetch has stopped (halt or end of code).
    Stopped,
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_cache::HierarchyConfig;
    use si_isa::{Assembler, R1, R2};

    fn setup(asm: Assembler) -> (Program, Hierarchy, Predictor, Trace) {
        (
            asm.assemble().unwrap(),
            Hierarchy::new(HierarchyConfig::kaby_lake_like(1)),
            Predictor::new(crate::predictor::PredictorKind::Bimodal, 64),
            Trace::new(),
        )
    }

    #[test]
    fn first_fetch_misses_icache_and_stalls() {
        let mut asm = Assembler::new(0);
        asm.mov_imm(R1, 1);
        asm.halt();
        let (p, mut h, mut bp, mut t) = setup(asm);
        let mut fe = Frontend::new(0, 16, 4);
        let out = fe.tick(0, 0, &p, &mut h, &mut bp, &mut t);
        assert_eq!(out, FetchOutcome::StalledICache);
        assert_eq!(fe.queued(), 0);
        // After the fill latency the whole 2-instruction program fetches.
        let dram = h.config().latency.dram;
        let out = fe.tick(dram, 0, &p, &mut h, &mut bp, &mut t);
        assert_eq!(out, FetchOutcome::Fetched(2));
        assert!(fe.stopped(), "halt stops fetch");
    }

    #[test]
    fn fetch_width_bounds_per_cycle_progress() {
        let mut asm = Assembler::new(0);
        for _ in 0..10 {
            asm.nop();
        }
        asm.halt();
        let (p, mut h, mut bp, mut t) = setup(asm);
        let mut fe = Frontend::new(0, 32, 4);
        fe.tick(0, 0, &p, &mut h, &mut bp, &mut t); // icache fill
        let dram = h.config().latency.dram;
        assert_eq!(
            fe.tick(dram, 0, &p, &mut h, &mut bp, &mut t),
            FetchOutcome::Fetched(4)
        );
        assert_eq!(fe.queued(), 4);
    }

    #[test]
    fn queue_full_stalls_fetch() {
        let mut asm = Assembler::new(0);
        for _ in 0..10 {
            asm.nop();
        }
        asm.halt();
        let (p, mut h, mut bp, mut t) = setup(asm);
        let mut fe = Frontend::new(0, 4, 4);
        fe.tick(0, 0, &p, &mut h, &mut bp, &mut t);
        let dram = h.config().latency.dram;
        fe.tick(dram, 0, &p, &mut h, &mut bp, &mut t);
        assert_eq!(
            fe.tick(dram + 1, 0, &p, &mut h, &mut bp, &mut t),
            FetchOutcome::StalledQueueFull
        );
        fe.pop();
        assert!(matches!(
            fe.tick(dram + 2, 0, &p, &mut h, &mut bp, &mut t),
            FetchOutcome::Fetched(_)
        ));
    }

    #[test]
    fn untrained_branch_falls_through_and_trained_branch_redirects() {
        let mut asm = Assembler::new(0);
        let target = asm.label("target");
        asm.branch_eq(R1, R2, target);
        asm.nop();
        asm.org(0x100);
        asm.bind(target);
        asm.halt();
        let (p, mut h, mut bp, mut t) = setup(asm);
        let mut fe = Frontend::new(0, 16, 4);
        fe.tick(0, 0, &p, &mut h, &mut bp, &mut t);
        let dram = h.config().latency.dram;
        fe.tick(dram, 0, &p, &mut h, &mut bp, &mut t);
        let first = fe.pop().unwrap();
        assert_eq!(first.predicted_next, INSTR_BYTES, "weakly not-taken");
        // Train taken, redirect a fresh frontend.
        bp.update(0, true, 0x100, false);
        bp.update(0, true, 0x100, false);
        let mut fe2 = Frontend::new(0, 16, 4);
        // Line 0 is already warm in the L1I, so the first tick fetches; the
        // predicted-taken branch ends the fetch group after one instruction.
        let out = fe2.tick(dram + 1, 0, &p, &mut h, &mut bp, &mut t);
        assert!(
            matches!(out, FetchOutcome::Fetched(1)),
            "taken ends group: {out:?}"
        );
        assert_eq!(fe2.pop().unwrap().predicted_next, 0x100);
        assert_eq!(fe2.pc(), 0x100);
    }

    #[test]
    fn redirect_clears_queue_and_resumes() {
        let mut asm = Assembler::new(0);
        asm.nop();
        asm.nop();
        asm.org(0x200);
        asm.halt();
        let (p, mut h, mut bp, mut t) = setup(asm);
        let mut fe = Frontend::new(0, 16, 4);
        fe.tick(0, 0, &p, &mut h, &mut bp, &mut t);
        let dram = h.config().latency.dram;
        fe.tick(dram, 0, &p, &mut h, &mut bp, &mut t);
        assert!(fe.queued() > 0);
        fe.redirect(0x200, dram + 1);
        assert_eq!(fe.queued(), 0);
        assert_eq!(fe.pc(), 0x200);
        assert!(!fe.stopped());
    }

    #[test]
    fn running_off_code_stops_fetch() {
        let mut asm = Assembler::new(0);
        asm.nop();
        let (p, mut h, mut bp, mut t) = setup(asm);
        let mut fe = Frontend::new(0, 16, 4);
        fe.tick(0, 0, &p, &mut h, &mut bp, &mut t);
        let dram = h.config().latency.dram;
        fe.tick(dram, 0, &p, &mut h, &mut bp, &mut t);
        assert!(fe.stopped());
        assert_eq!(fe.queued(), 1);
    }
}
