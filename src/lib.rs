//! # Speculative Interference Attacks — a full Rust reproduction
//!
//! This crate is the umbrella over a workspace that reproduces
//! *"Speculative Interference Attacks: Breaking Invisible Speculation
//! Schemes"* (Behnia et al., ASPLOS 2021) end to end:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `si-isa` | micro-ISA, assembler, reference interpreter |
//! | [`cache`] | `si-cache` | caches, QLRU replacement family, MSHRs, shared-LLC hierarchy |
//! | [`cpu`] | `si-cpu` | cycle-level out-of-order core and multi-core machine |
//! | [`schemes`] | `si-schemes` | DoM, InvisiSpec, SafeSpec, MuonTrap, CondSpec, CleanupSpec, §5 defenses |
//! | [`attacks`] | `si-core` | interference gadgets, receivers, end-to-end PoCs, covert channel, security checker |
//! | [`workloads`] | `si-workloads` | SPEC-like kernels and the defense-overhead harness |
//!
//! # Quickstart
//!
//! Run one cross-core D-Cache interference trial against Delay-on-Miss —
//! the paper's headline result (a cache-based covert channel that survives
//! invisible speculation):
//!
//! ```no_run
//! use speculative_interference::attacks::attacks::{Attack, AttackKind};
//! use speculative_interference::cpu::MachineConfig;
//! use speculative_interference::schemes::SchemeKind;
//!
//! let attack = Attack::new(
//!     AttackKind::NpeuVdVd,
//!     SchemeKind::DomSpectre,
//!     MachineConfig::default(),
//! );
//! assert_eq!(attack.run_trial(0).decoded, Some(0));
//! assert_eq!(attack.run_trial(1).decoded, Some(1));
//! ```
//!
//! See `examples/` for runnable scenarios, DESIGN.md for the system
//! inventory, and EXPERIMENTS.md for the paper-vs-measured record of every
//! table and figure.

pub use si_cache as cache;
pub use si_core as attacks;
pub use si_cpu as cpu;
pub use si_isa as isa;
pub use si_schemes as schemes;
pub use si_workloads as workloads;
